"""Connected components and Table-2 row computation tests."""

import numpy as np

from repro.graph.build import build_csr, empty_graph
from repro.graph.properties import (
    average_degree,
    connected_components,
    graph_info,
)

from helpers import make_graph


class TestConnectedComponents:
    def test_single_component(self, triangle):
        count, labels = connected_components(triangle)
        assert count == 1
        assert np.unique(labels).size == 1

    def test_two_components(self, two_components):
        count, labels = connected_components(two_components)
        assert count == 2
        assert labels[0] == labels[1] == labels[2]
        assert labels[3] == labels[4] == labels[5]
        assert labels[0] != labels[3]

    def test_isolated_vertices_counted(self):
        g = make_graph(5, [(0, 1, 1)])
        count, _ = connected_components(g)
        assert count == 4  # {0,1} plus three singletons

    def test_edgeless_graph(self):
        count, labels = connected_components(empty_graph(7))
        assert count == 7
        assert np.array_equal(np.sort(np.unique(labels)), np.arange(7))

    def test_path_is_connected(self, path_graph):
        count, _ = connected_components(path_graph)
        assert count == 1

    def test_matches_networkx(self, medium_graph):
        import networkx as nx

        u, v, _, _ = medium_graph.undirected_edges()
        G = nx.Graph()
        G.add_nodes_from(range(medium_graph.num_vertices))
        G.add_edges_from(zip(u.tolist(), v.tolist()))
        count, _ = connected_components(medium_graph)
        assert count == nx.number_connected_components(G)


class TestGraphInfo:
    def test_triangle_row(self, triangle):
        info = graph_info(triangle, "test")
        assert info.num_vertices == 3
        assert info.num_edges == 6  # directed slots, per Table 2 convention
        assert info.num_components == 1
        assert info.avg_degree == 2.0
        assert info.max_degree == 2

    def test_star_max_degree(self, star_graph):
        info = graph_info(star_graph)
        assert info.max_degree == 20

    def test_average_degree_empty(self):
        assert average_degree(empty_graph(0)) == 0.0

    def test_row_tuple_shape(self, triangle):
        row = graph_info(triangle, "grid").row()
        assert row[0] == "triangle"
        assert row[3] == "grid"
        assert len(row) == 7
