"""Multi-device sharded MST: bit-identity, accounting, integration.

The sharded engine's contract: for any shard count and partition
strategy the result is bit-identical (total weight, edge count, *and*
the selected edge mask) to the single-device run, and the modeled time
decomposes exactly into per-device exclusive shares + inter-device
comms.  Also covers the merge-round correctness trap (a local MSF edge
bypassed through another shard), the link cost model, per-shard fault
injection, and the service/metrics/Prometheus surfaces.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.eclmst import ecl_mst
from repro.core.verify import verify_mst
from repro.generators import suite
from repro.gpusim.costmodel import DEFAULT_LINK, LinkSpec
from repro.graph.build import empty_graph
from repro.obs.metrics import collect_result_metrics, metric_direction
from repro.obs.trace import Tracer
from repro.shard import BYTES_PER_EDGE, sharded_mst
from repro.shard.engine import sharded_mst as sharded_mst_direct

from helpers import make_graph

SCALE = 0.05
GRAPHS = ["internet", "2d-2e20.sym", "USA-road-d.NY"]


def _accounting_parts(result):
    sh = result.extra["shard"]
    return (
        sum(d["exclusive_seconds"] for d in sh["devices"])
        + sh["comms_seconds"]
    )


# ----------------------------------------------------------------------
# Bit-identity with single-device execution
# ----------------------------------------------------------------------
class TestBitIdentity:
    @pytest.mark.parametrize("name", GRAPHS)
    @pytest.mark.parametrize("shards", [2, 4, 8])
    def test_suite_graphs_match_single_device(self, name, shards):
        g = suite.build(name, scale=SCALE)
        base = ecl_mst(g)
        for strategy in ("contiguous", "hash"):
            r = ecl_mst(g, shards=shards, shard_strategy=strategy)
            assert r.total_weight == base.total_weight
            assert r.num_mst_edges == base.num_mst_edges
            # Not just the weight: the exact same edge set.
            assert np.array_equal(r.in_mst, base.in_mst)

    def test_merge_keeps_bypassed_local_edge_out(self):
        # Regression for the naive-contraction trap: the heavy local
        # edge (0,1,10) is on shard {0,1}'s local MSF (it is that
        # subgraph's only edge) but the global MST bypasses it through
        # shard {2,3}.  Naive "contract local MSF, solve boundary"
        # keeps it (weight 12); the correct answer is 3.
        g = make_graph(4, [(0, 1, 10), (0, 2, 1), (1, 3, 1), (2, 3, 1)],
                       name="bypass")
        base = ecl_mst(g)
        assert base.total_weight == 3
        for strategy in ("contiguous", "hash"):
            r = ecl_mst(g, shards=2, shard_strategy=strategy)
            assert r.total_weight == 3
            assert np.array_equal(r.in_mst, base.in_mst)

    def test_sharded_result_verifies(self):
        g = suite.build("internet", scale=SCALE)
        r = ecl_mst(g, shards=4, verify=True)
        verify_mst(r)  # idempotent, proves the mask is a real MSF

    def test_shards_one_is_plain_single_device(self):
        g = suite.build("internet", scale=SCALE)
        r = ecl_mst(g, shards=1)
        assert "shard" not in r.extra
        assert r.algorithm == "ecl-mst"


class TestDegenerateInputs:
    @pytest.mark.parametrize("n", [0, 1, 5])
    def test_edgeless_graphs(self, n):
        r = sharded_mst(empty_graph(n), shards=4)
        assert r.num_mst_edges == 0
        assert r.total_weight == 0
        assert r.extra["shard"]["cut_edges"] == 0

    def test_more_shards_than_vertices(self):
        g = make_graph(3, [(0, 1, 4), (1, 2, 7)], name="tiny")
        r = sharded_mst(g, shards=8)
        assert r.total_weight == 11
        assert r.num_mst_edges == 2

    def test_disconnected_components(self):
        edges = [(0, 1, 1), (1, 2, 2), (3, 4, 5), (4, 5, 6)]
        g = make_graph(7, edges, name="forest")  # vertex 6 isolated
        base = ecl_mst(g)
        for strategy in ("contiguous", "hash"):
            r = sharded_mst(g, shards=3, shard_strategy=strategy)
            assert r.total_weight == base.total_weight == 14
            assert r.num_mst_edges == base.num_mst_edges == 4
            assert np.array_equal(r.in_mst, base.in_mst)


# ----------------------------------------------------------------------
# Cost accounting and the link model
# ----------------------------------------------------------------------
class TestAccounting:
    def test_linkspec_alpha_beta_pricing(self):
        link = LinkSpec(name="test", latency_us=10.0, bandwidth_gbs=2.0)
        assert link.transfer_seconds(0) == 0.0
        assert link.transfer_seconds(-5) == 0.0
        got = link.transfer_seconds(2_000_000_000)
        assert got == pytest.approx(10e-6 + 1.0)

    def test_default_link(self):
        assert DEFAULT_LINK.name == "nvlink"
        assert DEFAULT_LINK.transfer_seconds(1) > 0.0

    @pytest.mark.parametrize("shards", [2, 4, 8])
    def test_exclusive_plus_comms_equals_total(self, shards):
        g = suite.build("2d-2e20.sym", scale=SCALE)
        r = ecl_mst(g, shards=shards)
        assert _accounting_parts(r) == pytest.approx(
            r.modeled_seconds, abs=1e-15)

    def test_comms_priced_by_link(self):
        g = suite.build("internet", scale=SCALE)
        slow = LinkSpec(name="pcie", latency_us=50.0, bandwidth_gbs=1.0)
        fast = sharded_mst_direct(g, shards=4)
        slowed = sharded_mst_direct(g, shards=4, link=slow)
        # Same computation, same bytes, pricier wire.
        assert slowed.total_weight == fast.total_weight
        assert (slowed.extra["shard"]["exchange_bytes"]
                == fast.extra["shard"]["exchange_bytes"])
        assert (slowed.extra["shard"]["comms_seconds"]
                > fast.extra["shard"]["comms_seconds"])
        assert slowed.extra["shard"]["link"]["name"] == "pcie"

    def test_exchange_bytes_match_edges_shipped(self):
        g = suite.build("internet", scale=SCALE)
        r = sharded_mst_direct(g, shards=4)
        sh = r.extra["shard"]
        shipped = sum(
            d["forest_edges"] + d["boundary_edges_sent"]
            for d in sh["devices"]
        )
        assert sh["exchange_bytes"] == BYTES_PER_EDGE * shipped

    def test_cut_appears_for_multi_shard(self):
        g = suite.build("internet", scale=SCALE)
        sh = ecl_mst(g, shards=4).extra["shard"]
        assert sh["cut_edges"] > 0
        assert 0.0 < sh["comms_time_share"] < 1.0
        assert sh["imbalance"] >= 1.0
        assert len(sh["devices"]) == 4


# ----------------------------------------------------------------------
# Observability surfaces
# ----------------------------------------------------------------------
class TestObservability:
    def test_result_metrics_carry_shard_gauges(self):
        g = suite.build("internet", scale=SCALE)
        m = collect_result_metrics(ecl_mst(g, shards=4))
        for name in ("shard.devices", "shard.imbalance", "shard.cut_edges",
                     "shard.comms_seconds", "shard.comms_time_share"):
            assert name in m, name
        assert m["shard.devices"] == 4.0
        assert m["shard.device.0.vertices"] > 0

    def test_metric_directions(self):
        assert metric_direction("shard.devices") == "info"
        assert metric_direction("shard.device.2.local_seconds") == "info"
        # A partitioner regression (bigger cut, worse balance) gates.
        assert metric_direction("shard.cut_edges") == "lower"
        assert metric_direction("shard.imbalance") == "lower"
        assert metric_direction("shard.comms_time_share") == "lower"

    def test_tracer_emits_shard_spans(self):
        g = suite.build("internet", scale=SCALE)
        tracer = Tracer()
        ecl_mst(g, shards=2, tracer=tracer)
        kinds = {s.kind for s in tracer.spans()}
        assert "shard" in kinds
        names = [s.name for s in tracer.spans(kind="shard")]
        assert any(n.startswith("shard ") for n in names)
        assert "boundary exchange" in names
        assert "merge" in names


# ----------------------------------------------------------------------
# Fault injection across devices
# ----------------------------------------------------------------------
class TestShardedFaults:
    def test_campaign_with_shards_passes(self):
        from repro.resilience.campaign import run_campaign

        g = suite.build("internet", scale=SCALE)
        report = run_campaign(g, n_faults=6, seed=0, shards=4)
        assert report.escaped == 0
        assert report.injected >= 6

    def test_fault_lands_on_one_device(self):
        from repro.resilience.faults import FaultPlan
        from repro.resilience.recovery import ResilienceConfig

        g = suite.build("internet", scale=SCALE)
        dry = ecl_mst(
            g, shards=4, resilience=ResilienceConfig(),
            fault_plan=FaultPlan(seed=3))
        fi = dry.extra["fault_injection"]
        assert fi["fault_shard"] == 3 % 4
        plan = FaultPlan.generate(
            seed=3, n_faults=1,
            launches=fi["launches_seen"],
            atomic_calls=fi["atomic_calls_seen"],
            kinds=("bitflip-parent",))
        r = ecl_mst(
            g, shards=4, resilience=ResilienceConfig(), fault_plan=plan)
        # Still the right answer, and the injection report names the
        # device the plan was scoped to.
        base = ecl_mst(g)
        assert r.total_weight == base.total_weight
        assert r.extra["fault_injection"]["fault_shard"] == 3 % 4


# ----------------------------------------------------------------------
# Service integration
# ----------------------------------------------------------------------
class TestServiceSharding:
    def test_query_validation(self):
        from repro.service import Query, QueryError

        with pytest.raises(QueryError, match="shards"):
            Query(input="internet", shards=-1)
        with pytest.raises(QueryError, match="shard_strategy"):
            Query(input="internet", shards=2, shard_strategy="metis")
        with pytest.raises(QueryError, match="only to"):
            Query(input="internet", shards=2, code="qKruskal")

    def test_spec_key_distinguishes_shard_counts(self):
        from repro.service import Query

        a = Query(input="internet", shards=2)
        b = Query(input="internet", shards=4)
        c = Query(input="internet", shards=0)
        d = Query(input="internet", shards=1)
        assert a.spec_key() != b.spec_key()
        # Unset (inheriting a single-device default) and explicit 1
        # are the same computation.
        assert c.spec_key() == d.spec_key()

    def test_service_default_inherited_and_reported(self):
        from repro.service import MSTService, Query, ServiceConfig

        with MSTService(ServiceConfig(workers=1, shards=4)) as svc:
            out = svc.run_batch(
                [Query(input="internet", scale=SCALE)])[0]
            status = svc.status()
            metrics = svc.metrics()
        assert out.ok
        assert out.shard["shards"] == 4
        assert out.shard["cut_edges"] > 0
        assert status["shard"]["shards"] == 4
        assert metrics["shard.devices"] == 4.0
        assert metrics["shard.cut_edges"] > 0

    def test_explicit_single_device_overrides_default(self):
        from repro.service import MSTService, Query, ServiceConfig

        with MSTService(ServiceConfig(workers=1, shards=4)) as svc:
            out = svc.run_batch(
                [Query(input="internet", scale=SCALE, shards=1)])[0]
        assert out.ok
        assert out.shard == {}

    def test_sharded_matches_unsharded_through_service(self):
        from repro.service import MSTService, Query, ServiceConfig

        with MSTService(ServiceConfig(workers=1)) as svc:
            plain, sharded = svc.run_batch([
                Query(input="internet", scale=SCALE, id="p"),
                Query(input="internet", scale=SCALE, id="s", shards=4),
            ])
        assert plain.ok and sharded.ok
        assert sharded.total_weight == plain.total_weight
        assert sharded.num_mst_edges == plain.num_mst_edges
        assert sharded.mst_digest == plain.mst_digest

    def test_outcome_shard_round_trips(self):
        from repro.service import MSTService, Query, ServiceConfig
        from repro.service.outcome import QueryOutcome

        with MSTService(ServiceConfig(workers=1)) as svc:
            out = svc.run_batch(
                [Query(input="internet", scale=SCALE, shards=2)])[0]
        doc = out.to_dict()
        assert doc["shard"]["shards"] == 2
        back = QueryOutcome.from_dict(doc)
        assert back.shard == out.shard

    def test_prometheus_exports_per_device_gauges(self):
        from repro.service import MSTService, Query, ServiceConfig
        from repro.service.admin import render_prometheus

        with MSTService(ServiceConfig(workers=1, shards=2)) as svc:
            svc.run_batch([Query(input="internet", scale=SCALE)])
            body = render_prometheus(svc)
        assert 'repro_shard_device_vertices{shard="0"}' in body
        assert 'repro_shard_device_local_seconds{shard="1"}' in body
