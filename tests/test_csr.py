"""Unit tests for the CSR graph structure."""

import numpy as np
import pytest

from repro.graph.build import build_csr, empty_graph
from repro.graph.csr import CSRGraph

from helpers import make_graph


class TestBasicShape:
    def test_counts(self, triangle):
        assert triangle.num_vertices == 3
        assert triangle.num_edges == 3
        assert triangle.num_directed_edges == 6

    def test_empty_graph(self):
        g = empty_graph(5)
        assert g.num_vertices == 5
        assert g.num_edges == 0
        assert g.num_directed_edges == 0
        g.validate()

    def test_single_edge(self):
        g = make_graph(2, [(0, 1, 7)])
        assert g.num_edges == 1
        assert g.neighbors(0).tolist() == [1]
        assert g.neighbor_weights(0).tolist() == [7]
        assert g.neighbors(1).tolist() == [0]

    def test_degrees(self, triangle):
        assert triangle.degrees().tolist() == [2, 2, 2]

    def test_star_degrees(self, star_graph):
        degs = star_graph.degrees()
        assert degs[0] == 20
        assert set(degs[1:].tolist()) == {1}


class TestEdgeIdentity:
    def test_mirrored_slots_share_weight_and_id(self, paper_figure1):
        g = paper_figure1
        src = g.edge_sources()
        for v in range(g.num_vertices):
            for j, n in enumerate(g.neighbors(v)):
                eid = g.neighbor_edge_ids(v)[j]
                w = g.neighbor_weights(v)[j]
                # Find the mirror slot n -> v.
                back = np.flatnonzero(g.neighbors(n) == v)
                assert back.size == 1
                assert g.neighbor_edge_ids(n)[back[0]] == eid
                assert g.neighbor_weights(n)[back[0]] == w
        assert src.size == g.num_directed_edges

    def test_edge_ids_cover_range(self, medium_graph):
        ids = np.sort(np.unique(medium_graph.edge_ids))
        assert np.array_equal(ids, np.arange(medium_graph.num_edges))

    def test_undirected_edges_one_per_id(self, medium_graph):
        u, v, w, eid = medium_graph.undirected_edges()
        assert np.array_equal(np.sort(eid), np.arange(medium_graph.num_edges))
        assert np.all(u < v)

    def test_iter_edges_matches_arrays(self, triangle):
        rows = list(triangle.iter_edges())
        u, v, w, eid = triangle.undirected_edges()
        assert rows == list(zip(u.tolist(), v.tolist(), w.tolist(), eid.tolist()))


class TestValidate:
    def test_valid_graphs_pass(self, medium_graph):
        medium_graph.validate()

    def test_rejects_mismatched_arrays(self):
        with pytest.raises(ValueError, match="entries"):
            CSRGraph(
                row_ptr=np.array([0, 2]),
                col_idx=np.array([1], dtype=np.int32),
                weights=np.array([1], dtype=np.int32),
                edge_ids=np.array([0], dtype=np.int32),
            )

    def test_rejects_self_loop(self):
        g = make_graph(2, [(0, 1, 1)])
        bad = CSRGraph(
            row_ptr=g.row_ptr.copy(),
            col_idx=g.col_idx.copy(),
            weights=g.weights.copy(),
            edge_ids=g.edge_ids.copy(),
        )
        bad.col_idx[0] = 0  # 0 -> 0 self loop
        with pytest.raises(ValueError):
            bad.validate()

    def test_rejects_asymmetric_weights(self, triangle):
        bad = CSRGraph(
            row_ptr=triangle.row_ptr.copy(),
            col_idx=triangle.col_idx.copy(),
            weights=triangle.weights.copy(),
            edge_ids=triangle.edge_ids.copy(),
        )
        bad.weights[0] += 1
        with pytest.raises(ValueError, match="mirror"):
            bad.validate()

    def test_rejects_out_of_range_neighbor(self, triangle):
        bad = CSRGraph(
            row_ptr=triangle.row_ptr.copy(),
            col_idx=triangle.col_idx.copy(),
            weights=triangle.weights.copy(),
            edge_ids=triangle.edge_ids.copy(),
        )
        bad.col_idx[0] = 99
        with pytest.raises(ValueError, match="range"):
            bad.validate()

    def test_rejects_bad_edge_ids(self, triangle):
        bad = CSRGraph(
            row_ptr=triangle.row_ptr.copy(),
            col_idx=triangle.col_idx.copy(),
            weights=triangle.weights.copy(),
            edge_ids=triangle.edge_ids.copy(),
        )
        bad.edge_ids[:] = 0
        with pytest.raises(ValueError):
            bad.validate()

    def test_rejects_empty_row_ptr(self):
        with pytest.raises(ValueError):
            CSRGraph(
                row_ptr=np.empty(0, dtype=np.int64),
                col_idx=np.empty(0, dtype=np.int32),
                weights=np.empty(0, dtype=np.int32),
                edge_ids=np.empty(0, dtype=np.int32),
            )


class TestNeighborViews:
    def test_neighbors_sorted(self, medium_graph):
        g = medium_graph
        for v in range(0, g.num_vertices, max(1, g.num_vertices // 17)):
            nbrs = g.neighbors(v)
            assert np.all(np.diff(nbrs) > 0)  # sorted, no duplicates

    def test_edge_sources_expansion(self, triangle):
        src = triangle.edge_sources()
        assert src.tolist() == [0, 0, 1, 1, 2, 2]
