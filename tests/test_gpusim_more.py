"""Additional gpusim coverage: counters aggregation, spec arithmetic,
and the CpuMachine phase ledger."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.gpusim.costmodel import CpuMachine, Device
from repro.gpusim.counters import KernelCounters, RunCounters
from repro.gpusim.spec import (
    PCIE_BANDWIDTH_GBS,
    RTX_3080_TI,
    THREADRIPPER_2950X,
    TITAN_V,
    XEON_GOLD_6226R_X2,
)


class TestRunCountersAggregation:
    def _filled(self):
        rc = RunCounters()
        rc.add(KernelCounters("a", items=10, cycles=100, bytes=1000, atomics=5))
        rc.add(KernelCounters("b", items=20, cycles=200, bytes=2000, atomics=7))
        rc.add(KernelCounters("a", items=30, cycles=300, bytes=3000))
        return rc

    def test_totals(self):
        rc = self._filled()
        assert rc.total("items") == 60
        assert rc.total("cycles") == 600
        assert rc.total("bytes") == 6000
        assert rc.total("atomics") == 12

    def test_launches_of(self):
        rc = self._filled()
        assert rc.launches_of("a") == 2
        assert rc.launches_of("b") == 1
        assert rc.launches_of("zzz") == 0

    def test_order_preserved(self):
        rc = self._filled()
        assert [k.name for k in rc.kernels] == ["a", "b", "a"]


class TestSpecArithmetic:
    def test_compute_rate_scales_with_cores(self):
        assert (
            RTX_3080_TI.compute_gcycles_per_s
            > TITAN_V.compute_gcycles_per_s
        )

    def test_cpu_serial_rate_ignores_efficiency(self):
        # One thread runs at full speed; the efficiency penalty is a
        # multi-threaded phenomenon.
        one = XEON_GOLD_6226R_X2.compute_gcycles_per_s(1)
        expected = 1 * XEON_GOLD_6226R_X2.clock_ghz * XEON_GOLD_6226R_X2.ipc
        assert one == pytest.approx(expected)

    def test_cpu_parallel_rate_above_serial(self):
        spec = THREADRIPPER_2950X
        assert spec.compute_gcycles_per_s(spec.cores) > spec.compute_gcycles_per_s(1)

    def test_pcie_slower_than_device_memory(self):
        for spec in (TITAN_V, RTX_3080_TI):
            assert PCIE_BANDWIDTH_GBS < spec.effective_bandwidth_gbs


class TestCpuMachineLedger:
    def test_phases_recorded_in_order(self):
        m = CpuMachine(XEON_GOLD_6226R_X2)
        m.phase("sort", ops=1e6)
        m.phase("scan", ops=2e6)
        assert [k.name for k in m.counters.kernels] == ["sort", "scan"]

    def test_elapsed_is_sum(self):
        m = CpuMachine(XEON_GOLD_6226R_X2)
        a = m.phase("a", ops=1e7).modeled_seconds
        b = m.phase("b", ops=3e7).modeled_seconds
        assert m.elapsed_seconds == pytest.approx(a + b)

    def test_ops_recorded_as_cycles(self):
        m = CpuMachine(XEON_GOLD_6226R_X2)
        m.phase("p", ops=1234.0)
        assert m.counters.kernels[0].cycles == 1234.0


@settings(max_examples=60, deadline=None)
@given(
    cycles=st.floats(0, 1e12),
    bytes_=st.floats(0, 1e12),
    atomics=st.integers(0, 10**9),
    contention=st.integers(0, 10**6),
    critical=st.integers(0, 10**6),
)
def test_property_kernel_time_monotone(cycles, bytes_, atomics, contention, critical):
    """More counted work can never make a kernel faster."""
    from repro.gpusim.costmodel import gpu_kernel_seconds

    base = KernelCounters("k", cycles=cycles, bytes=bytes_, atomics=atomics,
                          atomic_max_contention=contention, critical_items=critical)
    bigger = KernelCounters("k", cycles=cycles * 2 + 1, bytes=bytes_ * 2 + 1,
                            atomics=atomics * 2 + 1,
                            atomic_max_contention=contention * 2 + 1,
                            critical_items=critical * 2 + 1)
    assert gpu_kernel_seconds(RTX_3080_TI, bigger) >= gpu_kernel_seconds(
        RTX_3080_TI, base
    )
