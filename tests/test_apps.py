"""Application-layer tests: clustering, backbones, bottleneck paths."""

import numpy as np
import pytest

from repro.apps import (
    bottleneck_weights,
    kmst_spanner,
    mst_backbone,
    single_linkage_labels,
)
from repro.core.eclmst import ecl_mst
from repro.graph.build import build_csr
from repro.graph.properties import connected_components

from helpers import make_graph


def _blob_graph():
    """Two tight clusters joined by one expensive edge."""
    edges = []
    for base in (0, 5):
        for i in range(base, base + 5):
            for j in range(i + 1, base + 5):
                edges.append((i, j, 1 + (i + j) % 3))
    edges.append((2, 7, 1000))  # bridge
    return make_graph(10, edges, "blobs")


class TestClustering:
    def test_two_clusters_cut_bridge(self):
        labels = single_linkage_labels(_blob_graph(), k=2)
        assert len(set(labels[:5])) == 1
        assert len(set(labels[5:])) == 1
        assert labels[0] != labels[9]

    def test_k_one_is_components(self, medium_graph):
        labels = single_linkage_labels(medium_graph, k=1)
        n_cc, comp = connected_components(medium_graph)
        assert np.unique(labels).size == n_cc

    def test_k_equals_n_singletons(self, triangle):
        labels = single_linkage_labels(triangle, k=3)
        assert np.unique(labels).size == 3

    def test_reuses_precomputed_result(self, medium_graph):
        r = ecl_mst(medium_graph)
        a = single_linkage_labels(medium_graph, k=4, result=r)
        b = single_linkage_labels(medium_graph, k=4)
        # Same partition (labels may be permuted).
        for x in np.unique(a):
            members = np.flatnonzero(a == x)
            assert np.unique(b[members]).size == 1

    def test_invalid_k(self, triangle):
        with pytest.raises(ValueError):
            single_linkage_labels(triangle, k=0)

    def test_monotone_cluster_counts(self, medium_graph):
        n_cc, _ = connected_components(medium_graph)
        prev = None
        for k in (n_cc, n_cc + 2, n_cc + 5):
            count = np.unique(single_linkage_labels(medium_graph, k)).size
            assert count == min(k, medium_graph.num_vertices)
            if prev is not None:
                assert count >= prev
            prev = count


class TestBackbone:
    def test_backbone_is_the_msf(self, medium_graph):
        bb = mst_backbone(medium_graph)
        r = ecl_mst(medium_graph)
        assert bb.num_edges == r.num_mst_edges
        assert int(bb.weights.sum()) // 2 == r.total_weight

    def test_backbone_preserves_connectivity(self, medium_graph):
        n_before, _ = connected_components(medium_graph)
        n_after, _ = connected_components(mst_backbone(medium_graph))
        assert n_before == n_after

    def test_spanner_k1_equals_backbone(self, medium_graph):
        s1 = kmst_spanner(medium_graph, 1)
        bb = mst_backbone(medium_graph)
        assert s1.num_edges == bb.num_edges

    def test_spanner_grows_with_k(self, medium_graph):
        s1 = kmst_spanner(medium_graph, 1)
        s2 = kmst_spanner(medium_graph, 2)
        assert s2.num_edges >= s1.num_edges
        assert s2.num_edges <= 2 * (medium_graph.num_vertices - 1)

    def test_spanner_subset_of_graph(self, medium_graph):
        s2 = kmst_spanner(medium_graph, 2)
        orig = set(
            zip(*medium_graph.undirected_edges()[:2])
        )
        for a, b, _, _ in zip(*s2.undirected_edges()):
            assert (a, b) in orig

    def test_spanner_k_exhausts_small_graph(self, triangle):
        s = kmst_spanner(triangle, 10)  # more rounds than edges exist
        assert s.num_edges == 3  # everything eventually selected

    def test_invalid_k(self, triangle):
        with pytest.raises(ValueError):
            kmst_spanner(triangle, 0)


class TestBottleneck:
    def test_direct_edge(self):
        g = make_graph(2, [(0, 1, 42)])
        assert bottleneck_weights(g, [(0, 1)]) == [42]

    def test_path_max(self, paper_figure1):
        # MST = {(0,2,1), (2,4,2), (1,3,3), (0,1,4)}.
        # Path 3 -> 4 runs 3-1-0-2-4 with max weight 4.
        assert bottleneck_weights(paper_figure1, [(3, 4)]) == [4]

    def test_self_query(self, triangle):
        assert bottleneck_weights(triangle, [(1, 1)]) == [0]

    def test_cross_component_none(self, two_components):
        assert bottleneck_weights(two_components, [(0, 5)]) == [None]

    def test_out_of_range(self, triangle):
        with pytest.raises(IndexError):
            bottleneck_weights(triangle, [(0, 99)])

    def test_minimax_property(self, medium_graph):
        """The MST bottleneck is <= the max edge of ANY alternative
        path — check against direct edges."""
        u, v, w, _ = medium_graph.undirected_edges()
        picks = np.random.default_rng(0).choice(u.size, size=min(20, u.size), replace=False)
        queries = [(int(u[i]), int(v[i])) for i in picks]
        answers = bottleneck_weights(medium_graph, queries)
        for (a, b), ans, i in zip(queries, answers, picks):
            assert ans is not None
            assert ans <= int(w[i])  # the direct edge is one alternative
