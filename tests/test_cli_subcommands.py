"""CLI subcommand tests (run/codes/inputs/convert/mst/artifact)."""

import pytest

from repro.cli import main

SCALE = "0.06"


class TestRun:
    def test_run_ecl(self, capsys):
        assert main(["run", "ECL-MST", "internet", "--scale", SCALE]) == 0
        out = capsys.readouterr().out
        assert "edges=" in out and "Medges/s" in out

    def test_run_nc(self, capsys):
        assert main(["run", "Jucele GPU", "rmat16.sym", "--scale", SCALE]) == 1
        assert "NC" in capsys.readouterr().out

    def test_run_unknown_code(self, capsys):
        assert main(["run", "WarpDrive", "internet", "--scale", SCALE]) == 2

    def test_run_system1(self, capsys):
        assert (
            main(["run", "ECL-MST", "internet", "--system", "1", "--scale", SCALE])
            == 0
        )
        assert "Titan V" in capsys.readouterr().out


class TestListing:
    def test_codes(self, capsys):
        assert main(["codes"]) == 0
        out = capsys.readouterr().out
        assert "ECL-MST" in out and "Setia Prim" in out and "MST-only" in out

    def test_inputs(self, capsys):
        assert main(["inputs", "--scale", SCALE]) == 0
        assert "kron_g500-logn21" in capsys.readouterr().out


class TestConvertAndMst:
    def test_convert_roundtrip(self, tmp_path, capsys):
        from repro.generators import grid2d
        from repro.graph.io import save_ecl

        src = tmp_path / "g.ecl"
        save_ecl(grid2d(6, seed=1), src)
        dst = tmp_path / "g.gr"
        assert main(["convert", str(src), str(dst)]) == 0
        assert dst.exists()
        back = tmp_path / "g2.graph"
        assert main(["convert", str(dst), str(back)]) == 0
        assert "converted" in capsys.readouterr().out

    def test_convert_unknown_format(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["convert", str(tmp_path / "x.bin"), str(tmp_path / "y.ecl")])

    def test_mst_command(self, tmp_path, capsys):
        from repro.generators import road_network
        from repro.graph.io import save_ecl

        src = tmp_path / "r.ecl"
        save_ecl(road_network(120, seed=2), src)
        out = tmp_path / "mst.txt"
        assert main(["mst", str(src), "--out", str(out), "--verify"]) == 0
        text = out.read_text()
        assert text.startswith("# MSF")
        assert len(text.splitlines()) == 120  # header + 119 edges

    def test_mst_reads_edge_list(self, tmp_path, capsys):
        path = tmp_path / "g.txt"
        path.write_text("0 1 5\n1 2 2\n0 2 9\n")
        assert main(["mst", str(path)]) == 0
        assert "weight 7" in capsys.readouterr().out


class TestBackCompat:
    def test_bare_experiment_key(self, capsys):
        assert main(["table2", "--scale", SCALE]) == 0
        assert "Graph Name" in capsys.readouterr().out

    def test_no_args_prints_help(self, capsys):
        assert main([]) == 2


@pytest.mark.slow
class TestArtifactCommand:
    def test_full_workflow(self, tmp_path, capsys):
        assert main(["artifact", str(tmp_path / "af"), "--scale", SCALE]) == 0
        out = capsys.readouterr().out
        assert "MST GeoMean" in out
        assert (tmp_path / "af" / "ecl_mst_out.csv").exists()
        assert (tmp_path / "af" / "inputs").is_dir()
