"""Cost-model arithmetic tests."""

import pytest

from repro.gpusim.costmodel import CpuMachine, Device, cpu_phase_seconds, gpu_kernel_seconds
from repro.gpusim.counters import KernelCounters
from repro.gpusim.spec import (
    CPUSpec,
    RTX_3080_TI,
    THREADRIPPER_2950X,
    TITAN_V,
    XEON_GOLD_6226R_X2,
)


class TestGpuKernelPricing:
    def test_launch_overhead_floor(self):
        k = KernelCounters("k")
        t = gpu_kernel_seconds(RTX_3080_TI, k)
        assert t == pytest.approx(RTX_3080_TI.kernel_launch_us * 1e-6)

    def test_memory_bound(self):
        k = KernelCounters("k", bytes=1e9)
        t = gpu_kernel_seconds(RTX_3080_TI, k)
        expected = 1e9 / (RTX_3080_TI.effective_bandwidth_gbs * 1e9)
        assert t == pytest.approx(expected + RTX_3080_TI.kernel_launch_us * 1e-6)

    def test_compute_and_memory_overlap(self):
        mem_only = gpu_kernel_seconds(RTX_3080_TI, KernelCounters("k", bytes=1e9))
        both = gpu_kernel_seconds(
            RTX_3080_TI, KernelCounters("k", bytes=1e9, cycles=1.0)
        )
        assert both == pytest.approx(mem_only)  # max(), not sum

    def test_atomics_additive(self):
        base = gpu_kernel_seconds(RTX_3080_TI, KernelCounters("k", bytes=1e6))
        with_atomics = gpu_kernel_seconds(
            RTX_3080_TI, KernelCounters("k", bytes=1e6, atomics=10_000_000)
        )
        assert with_atomics > base

    def test_contention_dominates_throughput(self):
        spread = KernelCounters("k", atomics=1000)
        hot = KernelCounters("k", atomics=1000, atomic_max_contention=1000)
        assert gpu_kernel_seconds(RTX_3080_TI, hot) > gpu_kernel_seconds(
            RTX_3080_TI, spread
        )

    def test_critical_path_floor(self):
        k = KernelCounters("k", critical_items=1_000_000)
        t = gpu_kernel_seconds(RTX_3080_TI, k)
        assert t >= 1_000_000 * RTX_3080_TI.dependent_access_ns * 1e-9

    def test_titan_slower_than_ampere(self):
        k = KernelCounters("k", bytes=1e8, cycles=1e8)
        assert gpu_kernel_seconds(TITAN_V, k) > gpu_kernel_seconds(RTX_3080_TI, k)


class TestDevice:
    def test_accumulates(self):
        d = Device(RTX_3080_TI)
        d.launch("a", bytes_=1e6)
        d.launch("b", bytes_=2e6)
        assert d.counters.num_launches == 2
        assert d.elapsed_seconds > 0

    def test_host_sync_charges(self):
        d = Device(RTX_3080_TI)
        before = d.elapsed_seconds
        d.host_sync()
        assert d.elapsed_seconds - before == pytest.approx(
            RTX_3080_TI.host_sync_us * 1e-6
        )

    def test_seconds_by_kernel(self):
        d = Device(RTX_3080_TI)
        d.launch("a", bytes_=1e6)
        d.launch("a", bytes_=1e6)
        d.launch("b", bytes_=1e6)
        by = d.counters.seconds_by_kernel()
        assert by["a"] == pytest.approx(2 * by["b"])

    def test_memcpy_positive(self):
        d = Device(RTX_3080_TI)
        assert d.memcpy_seconds(1e6) > 1e6 / (7e9)


class TestCpuModel:
    def test_serial_uses_one_core(self):
        serial = cpu_phase_seconds(XEON_GOLD_6226R_X2, ops=1e9, threads=1)
        parallel = cpu_phase_seconds(XEON_GOLD_6226R_X2, ops=1e9, threads=32)
        assert serial > parallel

    def test_parallel_efficiency_below_linear(self):
        serial = cpu_phase_seconds(XEON_GOLD_6226R_X2, ops=1e9, threads=1)
        parallel = cpu_phase_seconds(XEON_GOLD_6226R_X2, ops=1e9, threads=32)
        speedup = serial / parallel
        assert 2 < speedup < 32

    def test_sync_overhead(self):
        no_sync = cpu_phase_seconds(XEON_GOLD_6226R_X2, ops=0, syncs=0)
        with_sync = cpu_phase_seconds(XEON_GOLD_6226R_X2, ops=0, syncs=5)
        assert with_sync - no_sync == pytest.approx(
            5 * XEON_GOLD_6226R_X2.sync_us * 1e-6
        )

    def test_machine_serial_flag(self):
        m = CpuMachine(XEON_GOLD_6226R_X2)
        k_par = m.phase("p", ops=1e9)
        k_ser = m.phase("s", ops=1e9, serial=True)
        assert k_ser.modeled_seconds > k_par.modeled_seconds

    def test_thread_cap(self):
        m = CpuMachine(THREADRIPPER_2950X, threads=1000)
        spec = THREADRIPPER_2950X
        assert spec.compute_gcycles_per_s(1000) == spec.compute_gcycles_per_s(
            spec.cores
        )


class TestSpecs:
    def test_total_cores(self):
        assert TITAN_V.total_cores == 5120
        assert RTX_3080_TI.total_cores == 10240

    def test_effective_bandwidth_below_peak(self):
        for spec in (TITAN_V, RTX_3080_TI):
            assert spec.effective_bandwidth_gbs < spec.mem_bandwidth_gbs

    def test_specs_frozen(self):
        with pytest.raises(Exception):
            TITAN_V.num_sms = 1

    def test_run_counters_summary_keys(self):
        d = Device(RTX_3080_TI)
        d.launch("a", items=5, bytes_=10, atomics=2, find_jumps=3)
        s = d.counters.summary()
        for key in ("launches", "items", "bytes", "atomics", "find_jumps", "seconds"):
            assert key in s
