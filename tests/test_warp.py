"""Warp scheduling-model tests (exact expected cycle counts)."""

import numpy as np

from repro.gpusim.warp import (
    HYBRID_DEGREE_THRESHOLD,
    edge_centric_cycles,
    hybrid_cycles,
    thread_mode_cycles,
)


class TestThreadMode:
    def test_uniform_work(self):
        # 32 threads each doing 3 items: one warp busy 3 steps.
        work = np.full(32, 3)
        assert thread_mode_cycles(work, 1.0) == 32 * 3

    def test_imbalance_charged_at_warp_max(self):
        work = np.zeros(32)
        work[0] = 10  # one busy lane stalls the whole warp
        assert thread_mode_cycles(work, 1.0) == 32 * 10

    def test_multiple_warps_sum(self):
        work = np.concatenate([np.full(32, 2), np.full(32, 5)])
        assert thread_mode_cycles(work, 1.0) == 32 * 2 + 32 * 5

    def test_partial_warp_padded(self):
        work = np.full(16, 4)  # padded to one warp of 32 lanes
        assert thread_mode_cycles(work, 1.0) == 32 * 4

    def test_per_item_scaling(self):
        work = np.full(32, 2)
        assert thread_mode_cycles(work, 2.5) == 32 * 2 * 2.5

    def test_empty(self):
        assert thread_mode_cycles(np.empty(0), 1.0) == 0.0


class TestHybrid:
    def test_low_degree_same_as_thread_mode(self):
        work = np.full(64, HYBRID_DEGREE_THRESHOLD - 1)
        assert hybrid_cycles(work, 1.0) == thread_mode_cycles(work, 1.0)

    def test_high_degree_vertex_gets_warp(self):
        work = np.array([100.0])
        # ceil(100/32)*32 = 128 lane-cycles + coordination constant.
        cycles = hybrid_cycles(work, 1.0)
        assert 128 <= cycles <= 128 + 10

    def test_hybrid_beats_thread_mode_on_skew(self):
        # A hub among idle lanes: hybrid splits the hub across a warp.
        work = np.zeros(32)
        work[0] = 1000
        assert hybrid_cycles(work, 1.0) < thread_mode_cycles(work, 1.0)

    def test_mixed_population(self):
        work = np.array([1.0, 2.0, 50.0, 3.0])
        low = np.array([1.0, 2.0, 3.0])
        expected_low = thread_mode_cycles(low, 1.0)
        assert hybrid_cycles(work, 1.0) > expected_low

    def test_empty(self):
        assert hybrid_cycles(np.empty(0), 1.0) == 0.0


class TestEdgeCentric:
    def test_exact_multiple(self):
        assert edge_centric_cycles(64, 1.0) == 64

    def test_rounds_up_to_warp(self):
        assert edge_centric_cycles(33, 1.0) == 64

    def test_zero(self):
        assert edge_centric_cycles(0, 1.0) == 0.0

    def test_uniformity_beats_thread_mode(self):
        # Same total work, but balanced: edge-centric is never worse.
        work = np.zeros(32)
        work[0] = 320
        assert edge_centric_cycles(320, 1.0) <= thread_mode_cycles(work, 1.0)
