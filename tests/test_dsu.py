"""Disjoint-set tests across all path-compression schemes."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dsu.arrays import Compression, DisjointSet

ALL_SCHEMES = list(Compression)


@pytest.mark.parametrize("scheme", ALL_SCHEMES)
class TestBasicOps:
    def test_initially_disjoint(self, scheme):
        d = DisjointSet(5, scheme)
        assert d.num_sets() == 5
        assert all(d.find(i) == i for i in range(5))

    def test_union_merges(self, scheme):
        d = DisjointSet(4, scheme)
        assert d.union(0, 1)
        assert d.same_set(0, 1)
        assert not d.same_set(0, 2)
        assert d.num_sets() == 3

    def test_union_idempotent(self, scheme):
        d = DisjointSet(4, scheme)
        assert d.union(0, 1)
        assert not d.union(1, 0)
        assert d.num_sets() == 3

    def test_chain_union(self, scheme):
        d = DisjointSet(10, scheme)
        for i in range(9):
            d.union(i, i + 1)
        assert d.num_sets() == 1
        assert len({d.find(i) for i in range(10)}) == 1

    def test_link_by_lower_id(self, scheme):
        d = DisjointSet(3, scheme)
        d.union(2, 1)
        # ECL links the higher root under the lower: 1 becomes root.
        assert d.find(2) == 1

    def test_representatives_matches_find(self, scheme):
        d = DisjointSet(20, scheme)
        rng = np.random.default_rng(0)
        for _ in range(15):
            d.union(int(rng.integers(20)), int(rng.integers(20)))
        reps = d.representatives()
        assert all(reps[i] == d.find(i) for i in range(20))


class TestCounters:
    def test_find_counts_increase(self):
        d = DisjointSet(5, Compression.NONE)
        d.union(0, 1)
        before = d.finds
        d.find(0)
        assert d.finds == before + 1

    def test_compress_writes_only_with_compression(self):
        chain = 30
        for scheme, expect_writes in [
            (Compression.NONE, False),
            (Compression.HALVING, True),
            (Compression.SPLITTING, True),
            (Compression.FULL, True),
            (Compression.INTERMEDIATE, True),
        ]:
            d = DisjointSet(chain, scheme)
            # Build a deep chain by unioning in an order that leaves depth.
            for i in range(chain - 1):
                d.parent[i + 1] = i  # craft a path 29 -> ... -> 0
            d.find(chain - 1)
            assert (d.compress_writes > 0) == expect_writes, scheme

    def test_full_compression_flattens(self):
        d = DisjointSet(10, Compression.FULL)
        for i in range(9):
            d.parent[i + 1] = i
        d.find(9)
        assert d.parent[9] == 0 and d.parent[5] == 0

    def test_halving_shortens_path(self):
        d = DisjointSet(16, Compression.HALVING)
        for i in range(15):
            d.parent[i + 1] = i
        loads_first = d.find_loads
        d.find(15)
        first = d.find_loads - loads_first
        loads_second = d.find_loads
        d.find(15)
        second = d.find_loads - loads_second
        assert second < first

    def test_union_cas_counted(self):
        d = DisjointSet(4)
        d.union(0, 1)
        d.union(2, 3)
        d.union(0, 3)
        assert d.union_cas == 3
        assert d.unions == 3


@settings(max_examples=60, deadline=None)
@given(
    pairs=st.lists(
        st.tuples(st.integers(0, 29), st.integers(0, 29)), max_size=80
    ),
    scheme=st.sampled_from(ALL_SCHEMES),
)
def test_partition_matches_reference(pairs, scheme):
    """Property: every scheme induces the same partition as a trivial
    label-everything reference implementation."""
    d = DisjointSet(30, scheme)
    labels = list(range(30))
    for a, b in pairs:
        d.union(a, b)
        la, lb = labels[a], labels[b]
        if la != lb:
            labels = [la if x == lb else x for x in labels]
    for i in range(30):
        for j in range(i + 1, 30):
            assert (labels[i] == labels[j]) == d.same_set(i, j)
