"""Property-based tests for the application layer."""

import numpy as np
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.apps import bottleneck_weights, kmst_spanner, single_linkage_labels
from repro.graph.build import build_csr
from repro.graph.properties import connected_components


@st.composite
def graphs_and_k(draw):
    n = draw(st.integers(2, 30))
    m = draw(st.integers(1, 80))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    g = build_csr(
        n,
        rng.integers(0, n, m),
        rng.integers(0, n, m),
        rng.integers(1, 500, m),
    )
    k = draw(st.integers(1, n))
    return g, k


@settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(gk=graphs_and_k())
def test_single_linkage_partition_is_valid(gk):
    g, k = gk
    labels = single_linkage_labels(g, k)
    n_cc, comp = connected_components(g)
    # Cluster count: k clamped between component count and |V|.
    count = np.unique(labels).size
    assert count == min(max(k, n_cc), g.num_vertices)
    # Clusters never span graph components.
    for c in np.unique(labels):
        members = np.flatnonzero(labels == c)
        assert np.unique(comp[members]).size == 1


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(gk=graphs_and_k())
def test_spanner_preserves_connectivity(gk):
    g, k = gk
    k = min(k, 3)
    s = kmst_spanner(g, k)
    n_before, _ = connected_components(g)
    n_after, _ = connected_components(s)
    assert n_before == n_after


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(gk=graphs_and_k(), seed=st.integers(0, 2**31 - 1))
def test_bottleneck_is_minimax_over_tree_paths(gk, seed):
    """For connected pairs, the answer equals the true minimax over the
    original graph (the MST minimax property), which we check against a
    brute-force threshold search."""
    g, _ = gk
    rng = np.random.default_rng(seed)
    a = int(rng.integers(g.num_vertices))
    b = int(rng.integers(g.num_vertices))
    (ans,) = bottleneck_weights(g, [(a, b)])
    n_cc, comp = connected_components(g)
    if comp[a] != comp[b]:
        assert ans is None
        return
    if a == b:
        assert ans == 0
        return
    # Brute force: smallest W such that the subgraph of edges with
    # weight <= W connects a and b.
    u, v, w, _ = g.undirected_edges()
    candidates = np.unique(w)
    best = None
    for W in candidates:
        keep = w <= W
        parent = list(range(g.num_vertices))

        def find(x):
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for i in np.flatnonzero(keep):
            ra, rb = find(int(u[i])), find(int(v[i]))
            if ra != rb:
                parent[ra] = rb
        if find(a) == find(b):
            best = int(W)
            break
    assert ans == best
