"""Bench-harness tests: grids, geomeans, NC handling, cells."""

import pytest

from repro.bench.harness import (
    SYSTEM1,
    SYSTEM2,
    Cell,
    geomean,
    run_cell,
    run_grid,
)
from repro.baselines.registry import get_runner
from repro.generators import suite


@pytest.fixture(scope="module")
def small_grid():
    graphs = {
        name: suite.build(name, scale=0.06)
        for name in ("USA-road-d.NY", "rmat16.sym", "coPapersDBLP")
    }
    return run_grid(
        ("ECL-MST", "Jucele GPU", "PBBS Ser."), graphs, SYSTEM2, verify=True
    )


class TestGrid:
    def test_all_cells_present(self, small_grid):
        assert len(small_grid.cells) == 9

    def test_nc_cell_for_mst_only_code(self, small_grid):
        cell = small_grid.cell("Jucele GPU", "rmat16.sym")  # multi-CC
        assert cell.is_nc
        assert cell.seconds is None

    def test_connected_inputs_measured(self, small_grid):
        cell = small_grid.cell("Jucele GPU", "USA-road-d.NY")
        assert not cell.is_nc
        assert cell.seconds > 0

    def test_column(self, small_grid):
        col = small_grid.column("ECL-MST")
        assert [c.graph_name for c in col] == list(small_grid.graphs)

    def test_geomean_none_when_any_nc(self, small_grid):
        assert small_grid.geomean_seconds("Jucele GPU") is None

    def test_geomean_mst_subset(self, small_grid):
        mst_names = {"USA-road-d.NY", "coPapersDBLP"}
        gm = small_grid.geomean_seconds("Jucele GPU", mst_only_names=mst_names)
        assert gm is not None and gm > 0

    def test_throughput(self, small_grid):
        g = small_grid.graphs["USA-road-d.NY"]
        cell = small_grid.cell("ECL-MST", "USA-road-d.NY")
        t = cell.throughput_meps(g.num_directed_edges)
        assert t == pytest.approx(
            g.num_directed_edges / cell.seconds / 1e6
        )

    def test_nc_throughput_none(self, small_grid):
        cell = small_grid.cell("Jucele GPU", "rmat16.sym")
        assert cell.throughput_meps(100) is None


class TestGeomean:
    def test_value(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            geomean([])


class TestRunCell:
    def test_repetitions_take_median(self):
        g = suite.build("USA-road-d.NY", scale=0.05)
        cell = run_cell(get_runner("ECL-MST"), g, SYSTEM2, repetitions=3)
        assert cell.seconds > 0
        assert cell.wall_seconds > 0

    def test_memcpy_only_for_gpu_result(self):
        g = suite.build("USA-road-d.NY", scale=0.05)
        gpu_cell = run_cell(get_runner("ECL-MST"), g, SYSTEM2)
        assert gpu_cell.memcpy_seconds > 0


class TestSystems:
    def test_system_presets(self):
        assert "Titan V" in SYSTEM1.gpu.name
        assert "3080" in SYSTEM2.gpu.name
        assert SYSTEM1.cpu.cores == 16
        assert SYSTEM2.cpu.cores == 32

    def test_system1_slower_gpu(self):
        g = suite.build("r4-2e23.sym", scale=0.2)
        c1 = run_cell(get_runner("ECL-MST"), g, SYSTEM1)
        c2 = run_cell(get_runner("ECL-MST"), g, SYSTEM2)
        assert c1.seconds > c2.seconds
