"""Packed-key and atomic-semantics tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.gpusim.atomics import (
    KEY_INFINITY,
    atomic_min_u64,
    pack_keys,
    unpack_edge_id,
    unpack_weight,
)


class TestPacking:
    def test_roundtrip(self):
        w = np.array([0, 1, 77, 2**30], dtype=np.int64)
        e = np.array([0, 5, 2**31, 2**32 - 1], dtype=np.int64)
        keys = pack_keys(w, e)
        assert np.array_equal(unpack_weight(keys), w)
        assert np.array_equal(unpack_edge_id(keys), e)

    def test_weight_dominates_ordering(self):
        k1 = pack_keys([5], [999])
        k2 = pack_keys([6], [0])
        assert k1[0] < k2[0]

    def test_edge_id_breaks_ties(self):
        k1 = pack_keys([5], [3])
        k2 = pack_keys([5], [4])
        assert k1[0] < k2[0]

    def test_infinity_greater_than_everything(self):
        keys = pack_keys([2**30], [2**32 - 1])
        assert keys[0] < KEY_INFINITY

    def test_overflowing_weight_rejected(self):
        with pytest.raises(ValueError, match="31 bits"):
            pack_keys([2**31], [0])

    @given(
        w=st.integers(0, 2**31 - 1),
        e=st.integers(0, 2**32 - 1),
    )
    def test_property_roundtrip(self, w, e):
        keys = pack_keys([w], [e])
        assert int(unpack_weight(keys)[0]) == w
        assert int(unpack_edge_id(keys)[0]) == e


class TestAtomicMin:
    def _fresh(self, n=8):
        return np.full(n, KEY_INFINITY, dtype=np.uint64)

    def test_result_independent_of_guard(self):
        rng = np.random.default_rng(0)
        idx = rng.integers(0, 8, 200)
        keys = pack_keys(rng.integers(1, 1000, 200), np.arange(200))
        a, b = self._fresh(), self._fresh()
        atomic_min_u64(a, idx, keys, guarded=True)
        atomic_min_u64(b, idx, keys, guarded=False)
        assert np.array_equal(a, b)

    def test_unguarded_counts_everything(self):
        t = self._fresh()
        executed, skipped = atomic_min_u64(
            t, np.zeros(10, dtype=np.int64), pack_keys(np.arange(1, 11), np.arange(10)),
            guarded=False,
        )
        assert executed == 10 and skipped == 0

    def test_guarded_counts_harmonic_expectation(self):
        # 100 lanes hitting one slot: expect ~H(100) ~= 5.2 executions.
        t = self._fresh()
        keys = pack_keys(np.arange(1, 101), np.arange(100))
        executed, skipped = atomic_min_u64(
            t, np.zeros(100, dtype=np.int64), keys, guarded=True
        )
        assert 1 <= executed <= 10
        assert executed + skipped == 100

    def test_guard_skips_stale_candidates(self):
        t = self._fresh(1)
        atomic_min_u64(t, np.array([0]), pack_keys([5], [0]), guarded=True)
        executed, skipped = atomic_min_u64(
            t, np.array([0, 0]), pack_keys([9, 8], [1, 2]), guarded=True
        )
        assert executed == 0 and skipped == 2
        assert unpack_weight(t)[0] == 5

    def test_empty_input(self):
        t = self._fresh()
        assert atomic_min_u64(t, np.empty(0, int), np.empty(0, np.uint64)) == (0, 0)

    @settings(max_examples=50, deadline=None)
    @given(
        data=st.lists(
            st.tuples(st.integers(0, 7), st.integers(1, 500)), max_size=60
        )
    )
    def test_property_final_is_true_min(self, data):
        t = self._fresh()
        if data:
            idx = np.array([d[0] for d in data])
            keys = pack_keys([d[1] for d in data], np.arange(len(data)))
            atomic_min_u64(t, idx, keys, guarded=True)
            for slot in range(8):
                mask = idx == slot
                if mask.any():
                    assert t[slot] == keys[mask].min()
                else:
                    assert t[slot] == KEY_INFINITY
