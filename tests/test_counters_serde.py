"""RunCounters serialization round-trip and render_timeline edge cases."""

import json

from repro.gpusim.counters import KernelCounters, RunCounters


def _sample_counters() -> RunCounters:
    rc = RunCounters()
    rc.add(
        KernelCounters(
            name="init",
            items=100,
            cycles=1234.5,
            bytes=9876.0,
            atomics=7,
            atomics_skipped=3,
            atomic_max_contention=2,
            critical_items=5,
            find_jumps=11,
            modeled_seconds=1.5e-6,
        )
    )
    rc.add(KernelCounters(name="k1_reserve", items=50, modeled_seconds=3e-6))
    rc.add(KernelCounters(name="host_sync", modeled_seconds=9e-6))
    return rc


class TestSerde:
    def test_round_trip_preserves_everything(self):
        rc = _sample_counters()
        clone = RunCounters.from_dict(rc.to_dict())
        assert clone.kernels == rc.kernels
        assert clone.summary() == rc.summary()
        assert clone.seconds_by_kernel() == rc.seconds_by_kernel()

    def test_json_compatible(self):
        rc = _sample_counters()
        clone = RunCounters.from_dict(json.loads(json.dumps(rc.to_dict())))
        assert clone.kernels == rc.kernels

    def test_unknown_keys_ignored(self):
        d = _sample_counters().to_dict()
        d["kernels"][0]["future_field"] = 42
        clone = RunCounters.from_dict(d)
        assert clone.kernels[0].name == "init"

    def test_empty(self):
        assert RunCounters.from_dict(RunCounters().to_dict()).kernels == []

    def test_real_run_round_trips(self, medium_graph):
        from repro.core.eclmst import ecl_mst

        rc = ecl_mst(medium_graph).counters
        clone = RunCounters.from_dict(rc.to_dict())
        assert clone.total_seconds == rc.total_seconds  # bitwise
        assert clone.summary() == rc.summary()


class TestRenderTimeline:
    def test_wide_items_stay_aligned(self):
        rc = RunCounters()
        rc.add(KernelCounters(name="a", items=5, modeled_seconds=1e-6))
        rc.add(
            KernelCounters(
                name="b", items=123_456_789_012_345, modeled_seconds=2e-6
            )
        )
        lines = rc.render_timeline().splitlines()
        # The us column starts at the same offset in every row.
        assert len({line.index("us ") for line in lines}) == 1
        assert "123456789012345" in lines[1]

    def test_all_zero_seconds_no_degenerate_bars(self):
        rc = RunCounters()
        rc.add(KernelCounters(name="a", items=1, modeled_seconds=0.0))
        rc.add(KernelCounters(name="b", items=2, modeled_seconds=0.0))
        text = rc.render_timeline()
        assert "#" not in text  # no fake full-width (or unit) bars
        assert "0.00us" in text

    def test_zero_rows_in_mixed_run_show_no_bar(self):
        rc = RunCounters()
        rc.add(KernelCounters(name="a", items=1, modeled_seconds=1e-6))
        rc.add(KernelCounters(name="b", items=2, modeled_seconds=0.0))
        lines = rc.render_timeline().splitlines()
        assert lines[0].count("#") > 0
        assert lines[1].count("#") == 0

    def test_bar_clamped_to_width(self):
        rc = RunCounters()
        rc.add(KernelCounters(name="hot", items=1, modeled_seconds=5e-3))
        rc.add(KernelCounters(name="cold", items=1, modeled_seconds=1e-9))
        for width in (1, 7, 40):
            lines = rc.render_timeline(width=width).splitlines()
            assert max(line.count("#") for line in lines) <= width
            # The minnow still gets one visible tick.
            assert lines[1].count("#") == 1

    def test_empty_run(self):
        assert RunCounters().render_timeline() == "(no launches)"
