"""Diagnostics: launch timeline rendering and the §5.2 degree-throughput
correlation experiment."""

from repro.bench.experiments import exp_degree_correlation
from repro.core.eclmst import ecl_mst
from repro.gpusim.counters import RunCounters


class TestTimeline:
    def test_rows_match_launches(self, medium_graph):
        r = ecl_mst(medium_graph)
        lines = r.counters.render_timeline().splitlines()
        assert len(lines) == r.counters.num_launches

    def test_contains_kernel_names_and_units(self, medium_graph):
        r = ecl_mst(medium_graph)
        out = r.counters.render_timeline()
        assert "init" in out and "k1_reserve" in out and "us" in out

    def test_bars_proportional(self, medium_graph):
        r = ecl_mst(medium_graph)
        out = r.counters.render_timeline()
        slowest = max(r.counters.kernels, key=lambda k: k.modeled_seconds)
        row = next(
            l for l in out.splitlines() if f" {slowest.name} " in f" {l} "
            and f"{slowest.modeled_seconds * 1e6:9.2f}us" in l
        )
        assert row.count("#") >= max(
            l.count("#") for l in out.splitlines()
        ) - 1

    def test_empty_counters(self):
        assert RunCounters().render_timeline() == "(no launches)"


class TestDegreeCorrelation:
    def test_positive_correlation(self):
        out = exp_degree_correlation(0.15)
        corr = float(out.splitlines()[-1].split(",")[-1])
        # The paper: throughput "significantly correlate[s] with the
        # average degree".
        assert corr > 0.5

    def test_all_inputs_listed(self):
        out = exp_degree_correlation(0.1)
        assert len(out.splitlines()) == 1 + 17 + 1  # header + inputs + corr

    def test_registered_in_cli(self, capsys):
        from repro.cli import main

        assert main(["degcorr", "--scale", "0.08"]) == 0
        assert "pearson_correlation" in capsys.readouterr().out
