"""Shared test helpers (importable without conftest-name collisions)."""

from __future__ import annotations

import numpy as np

from repro.graph.build import build_csr, empty_graph


def make_graph(num_vertices: int, edges: list[tuple[int, int, int]], name="g"):
    """Tiny explicit graph from (u, v, w) triples."""
    if not edges:
        return empty_graph(num_vertices, name)
    u, v, w = (np.array(x, dtype=np.int64) for x in zip(*edges))
    return build_csr(num_vertices, u, v, w, name=name)
