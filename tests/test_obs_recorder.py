"""Flight recorder, postmortem bundles, and deterministic replay."""

import json
import threading

import pytest

from repro.errors import EXIT_REPLAY_DIVERGED, BundleError
from repro.obs.events import NULL_EVENTS, EventLog, ListSink
from repro.obs.metrics import metric_direction
from repro.obs.recorder import (
    BUNDLE_SCHEMA,
    FlightRecorder,
    RecorderConfig,
    TeeEventLog,
    bundle_summary,
    load_bundle,
    recent_bundles,
    render_postmortem,
    replay_bundle,
)
from repro.obs.slo import SLOTracker
from repro.obs.window import SlidingHistogram
from repro.resilience.policy import CircuitBreaker, PolicyConfig
from repro.service.engine import MSTService, ServiceConfig
from repro.service.query import Query

SCALE = 0.02


def ok_query(qid="ok-1", **kw):
    return Query(id=qid, input="internet", code="ECL-MST", scale=SCALE, **kw)


def fault_query(qid="boom", seed=7):
    """A seeded chaos query with no resilience: deterministic exit-5
    error outcome (the fault propagates)."""
    return Query(
        id=qid,
        input="internet",
        code="ECL-MST",
        scale=SCALE,
        n_faults=1,
        check_cadence=0,
        fault_kinds=("kernel-fail",),
        fault_seed=seed,
    )


def recorder_config(tmp_path, **kw):
    kw.setdefault("dir", str(tmp_path / "pm"))
    kw.setdefault("snapshot_interval_s", 0.0)
    return RecorderConfig(**kw)


def service(tmp_path, **kw):
    kw.setdefault("workers", 2)
    kw.setdefault("recorder", recorder_config(tmp_path))
    return MSTService(ServiceConfig(**kw))


def bundles_in(tmp_path):
    return sorted((tmp_path / "pm").glob("PM_*.bundle"))


# ---------------------------------------------------------------------------
# Ring buffers and the tee
# ---------------------------------------------------------------------------
class TestRingsAndTee:
    def test_event_ring_is_bounded(self):
        rec = FlightRecorder(RecorderConfig(enabled=False, events_capacity=4))
        for i in range(10):
            rec.record_event("e", "info", {"i": i})
        tail = rec.debug_snapshot()["events"]
        assert [e["i"] for e in tail] == [6, 7, 8, 9]

    def test_tee_keeps_debug_detail_on_a_silent_log(self):
        rec = FlightRecorder(RecorderConfig(enabled=False))
        tee = rec.tee(NULL_EVENTS)
        assert tee.enabled and tee.would_emit("debug")
        tee.emit("solver.round", level="debug", round=3)
        assert rec.debug_snapshot()["events"][-1]["round"] == 3

    def test_tee_forwards_to_inner_log_with_bound_fields(self):
        sink = ListSink()
        inner = EventLog(level="info", sinks=[sink])
        rec = FlightRecorder(RecorderConfig(enabled=False))
        tee = rec.tee(inner).bind(query="q9")
        tee.emit("service.execute", level="info", code="ECL-MST")
        assert sink.events[0].fields["query"] == "q9"
        assert rec.debug_snapshot()["events"][-1]["query"] == "q9"

    def test_tee_bind_composes(self):
        rec = FlightRecorder(RecorderConfig(enabled=False))
        tee = rec.tee(NULL_EVENTS).bind(query="a").bind(run="r1")
        assert isinstance(tee, TeeEventLog)
        tee.emit("x")
        entry = rec.debug_snapshot()["events"][-1]
        assert (entry["query"], entry["run"]) == ("a", "r1")


# ---------------------------------------------------------------------------
# Capture
# ---------------------------------------------------------------------------
class TestCapture:
    def test_error_outcome_writes_a_bundle(self, tmp_path):
        with service(tmp_path) as svc:
            out = svc.run_batch([fault_query()])[0]
        assert out.status == "error" and out.exit_code == 5
        (path,) = bundles_in(tmp_path)
        bundle = load_bundle(path)
        assert bundle["schema"] == BUNDLE_SCHEMA
        assert bundle["reason"] == "outcome-error"
        assert bundle["query"]["id"] == "boom"
        assert bundle["outcome"]["exit_code"] == 5
        assert bundle["repro"]["fault_seed"] == 7
        assert bundle["statusz"]["recorder"]["enabled"] is True
        assert any(
            e["event"] == "fault.injected" for e in bundle["rings"]["events"]
        )

    def test_cooldown_suppresses_repeat_bundles(self, tmp_path):
        with service(tmp_path) as svc:
            svc.run_batch([fault_query(f"b{i}", seed=7) for i in range(4)])
            metrics = svc.metrics()
        # Same spec failing repeatedly inside the cooldown window: one
        # bundle, the rest counted as suppressed.
        assert len(bundles_in(tmp_path)) == 1
        assert metrics["service.postmortem.bundles"] == 1.0
        assert metrics["service.postmortem.suppressed"] >= 1.0

    def test_bundle_dir_is_pruned_to_limit(self, tmp_path):
        cfg = recorder_config(tmp_path, bundle_limit=2, bundle_cooldown_s=0.0)
        with service(tmp_path, recorder=cfg) as svc:
            # Distinct seeds -> distinct specs -> distinct cooldown keys.
            svc.run_batch([fault_query(f"b{i}", seed=i) for i in range(5)])
        assert len(bundles_in(tmp_path)) == 2

    def test_trigger_event_on_tee_captures(self, tmp_path):
        rec = FlightRecorder(recorder_config(tmp_path))
        tee = rec.tee(NULL_EVENTS)
        tee.emit("invariant.violated", level="error", invariant="parent-root")
        (path,) = bundles_in(tmp_path)
        bundle = load_bundle(path)
        assert bundle["reason"] == "invariant.violated"
        assert bundle["trigger"]["invariant"] == "parent-root"
        assert bundle["query"] is None  # context capture, not replayable

    def test_breaker_open_captures_without_deadlock(self, tmp_path):
        cfg = ServiceConfig(
            workers=2,
            recorder=recorder_config(tmp_path),
            policy=PolicyConfig(breaker_threshold=1),
        )
        done = []

        def drive():
            with MSTService(cfg) as svc:
                svc.run_batch([fault_query()])
                done.append(svc.metrics()["service.postmortem.bundles"])

        t = threading.Thread(target=drive, daemon=True)
        t.start()
        t.join(timeout=60.0)
        # The breaker.open event is emitted under the breaker's own
        # lock; a capture that re-entered service.status() would hang
        # here forever.
        assert done and done[0] >= 1.0
        reasons = {
            load_bundle(p)["reason"] for p in bundles_in(tmp_path)
        }
        assert "breaker.open" in reasons or "outcome-error" in reasons

    def test_disabled_recorder_never_writes(self, tmp_path):
        with service(tmp_path, recorder=None) as svc:
            out = svc.run_batch([fault_query()])[0]
            assert svc.recorder is None
            assert out.status == "error"
            assert "obs.recorder.events" not in svc.metrics()
        assert not (tmp_path / "pm").exists()

    def test_capture_crash_records_last_words(self, tmp_path):
        rec = FlightRecorder(recorder_config(tmp_path))
        path = rec.capture_crash(RuntimeError("worker pool exploded"))
        bundle = load_bundle(path)
        assert bundle["reason"] == "crash"
        assert bundle["trigger"]["type"] == "RuntimeError"


# ---------------------------------------------------------------------------
# Bundle files
# ---------------------------------------------------------------------------
class TestBundleFiles:
    def test_load_bundle_missing_file(self, tmp_path):
        with pytest.raises(BundleError, match="cannot read"):
            load_bundle(tmp_path / "nope.bundle")

    def test_load_bundle_malformed_json(self, tmp_path):
        p = tmp_path / "bad.bundle"
        p.write_text("{not json")
        with pytest.raises(BundleError, match="malformed"):
            load_bundle(p)

    def test_load_bundle_wrong_schema(self, tmp_path):
        p = tmp_path / "other.bundle"
        p.write_text(json.dumps({"schema": "something-else/v9"}))
        with pytest.raises(BundleError, match="not a postmortem bundle"):
            load_bundle(p)

    def test_bundle_error_is_an_input_error(self):
        from repro.errors import GraphFormatError

        assert issubclass(BundleError, GraphFormatError)

    def test_recent_bundles_lists_and_skips_garbage(self, tmp_path):
        with service(tmp_path) as svc:
            svc.run_batch([fault_query()])
        (tmp_path / "pm" / "PM_garbage.bundle").write_text("nope")
        rows = recent_bundles(tmp_path / "pm")
        assert len(rows) == 1
        assert rows[0]["query"] == "boom"
        assert rows[0]["exit_code"] == 5
        assert recent_bundles(tmp_path / "absent") == []

    def test_render_postmortem_report(self, tmp_path):
        with service(tmp_path, keep_profile=True) as svc:
            svc.run_batch([ok_query(), fault_query()])
        (path,) = bundles_in(tmp_path)
        report = render_postmortem(load_bundle(path))
        assert "postmortem: outcome-error" in report
        assert "query boom" in report
        assert "fault_seed" in report
        assert "event timeline" in report
        assert "fault.injected" in report
        assert "correlated spans" in report
        assert "headline metrics" in report
        # keep_profile on: the failing run leaves a roofline behind.
        assert "roofline" in report
        summary = bundle_summary(load_bundle(path), path)
        assert summary["reason"] == "outcome-error"
        assert summary["error_kind"] == "fault"


# ---------------------------------------------------------------------------
# Deterministic replay
# ---------------------------------------------------------------------------
class TestReplay:
    def test_seeded_fault_replays_bit_identically(self, tmp_path):
        with service(tmp_path) as svc:
            recorded = svc.run_batch([fault_query()])[0]
        (path,) = bundles_in(tmp_path)
        report = replay_bundle(load_bundle(path), bundle_path=path)
        assert report.matched, report.diffs
        assert report.exit_code == 0
        assert report.replayed["status"] == recorded.status == "error"
        assert report.replayed["exit_code"] == 5
        assert report.replayed["error"] == recorded.error
        assert "MATCH" in report.render()

    def test_ok_outcome_replays_full_payload(self, tmp_path):
        rec = FlightRecorder(recorder_config(tmp_path))
        with service(tmp_path, recorder=None) as svc:
            q = ok_query()
            out = svc.run_batch([q])[0]
        path = rec.capture(reason="manual", query=q, outcome=out)
        report = replay_bundle(load_bundle(path), bundle_path=path)
        assert report.matched, report.diffs
        for field in ("total_weight", "mst_digest", "metrics", "rounds"):
            assert report.replayed[field] == report.recorded[field]

    def test_divergence_is_reported_with_exit_7(self, tmp_path):
        with service(tmp_path) as svc:
            svc.run_batch([fault_query()])
        (path,) = bundles_in(tmp_path)
        bundle = load_bundle(path)
        bundle["outcome"]["exit_code"] = 99  # tamper the record
        report = replay_bundle(bundle, bundle_path=path)
        assert not report.matched
        assert report.exit_code == EXIT_REPLAY_DIVERGED == 7
        assert "exit_code" in report.diffs
        assert "DIVERGED" in report.render()
        assert report.to_dict()["diffs"]["exit_code"]["recorded"] == 99

    def test_bundle_without_query_is_not_replayable(self, tmp_path):
        rec = FlightRecorder(recorder_config(tmp_path))
        path = rec.capture(reason="slo.burn")
        with pytest.raises(BundleError, match="no captured query"):
            replay_bundle(load_bundle(path))


# ---------------------------------------------------------------------------
# Zero-overhead contract: recorder on == recorder off, bit for bit
# ---------------------------------------------------------------------------
class TestBitIdentity:
    def test_results_identical_with_recorder_on_and_off(self, tmp_path):
        queries = [
            ok_query("a"),
            ok_query("b", system=1),
            fault_query("f", seed=3),
        ]
        with service(tmp_path) as svc_on:
            on = svc_on.run_batch([q for q in queries])
        with service(tmp_path, recorder=None) as svc_off:
            off = svc_off.run_batch([q for q in queries])
        for a, b in zip(on, off):
            assert a.replay_identity() == b.replay_identity()
            assert a.error == b.error


# ---------------------------------------------------------------------------
# Exemplars and metric classification
# ---------------------------------------------------------------------------
class TestExemplarsAndMetrics:
    def test_recorder_metrics_classify_as_info(self):
        for name in (
            "obs.recorder.events",
            "obs.recorder.outcomes",
            "service.postmortem.bundles",
            "service.postmortem.suppressed",
            "service.postmortem.capture_errors",
        ):
            assert metric_direction(name) == "info"

    def test_sliding_histogram_exemplar(self):
        h = SlidingHistogram(window_s=60.0)
        assert h.summary() == {
            "count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0, "max": 0.0,
        }  # empty sentinel shape is part of the API
        h.observe(0.1, exemplar="fast")
        h.observe(2.5, exemplar="slow")
        h.observe(0.2)
        assert h.max_exemplar() == "slow"
        assert h.summary()["max_exemplar"] == "slow"

    def test_slo_exemplar_surfaces_on_burn(self):
        t = SLOTracker(window_s=60.0)
        t.record(ok=True, latency_s=0.01, query_id="good")
        t.record(ok=False, latency_s=0.01, query_id="bad-query")
        status = {s.spec.name: s for s in t.evaluate()}
        assert status["availability"].alerting
        assert status["availability"].exemplar == "bad-query"
        assert status["availability"].to_dict()["exemplar"] == "bad-query"
        # Healthy SLOs carry no exemplar.
        assert status["escaped-faults"].exemplar is None

    def test_breaker_remembers_last_failing_query(self):
        b = CircuitBreaker(PolicyConfig(breaker_threshold=2), "graph-x")
        b.record(False, query_id="q1")
        b.record(False, query_id="q2")
        snap = b.snapshot()
        assert snap["state"] == "open"
        assert snap["last_failure_query"] == "q2"

    def test_statusz_carries_recorder_block(self, tmp_path):
        with service(tmp_path) as svc:
            assert svc.status()["recorder"]["enabled"] is True
        with service(tmp_path, recorder=None) as svc:
            assert svc.status()["recorder"] == {"enabled": False}
