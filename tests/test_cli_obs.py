"""CLI tests for the observability subcommands (trace/profile)."""

import json

import pytest

from repro.cli import main

SCALE = "0.06"


class TestTrace:
    def test_chrome_output(self, capsys):
        assert main(["trace", "internet", "--scale", SCALE]) == 0
        events = json.loads(capsys.readouterr().out)
        assert isinstance(events, list) and events
        for e in events:
            assert {"ph", "ts", "name"} <= set(e)

    def test_ndjson_output(self, capsys):
        assert (
            main(["trace", "internet", "--scale", SCALE, "--format", "ndjson"])
            == 0
        )
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines
        for line in lines:
            assert "name" in json.loads(line)

    def test_out_file(self, capsys, tmp_path):
        path = tmp_path / "trace.json"
        assert (
            main(["trace", "internet", "--scale", SCALE, "--out", str(path)])
            == 0
        )
        assert isinstance(json.loads(path.read_text()), list)

    def test_traced_baseline_code(self, capsys):
        assert (
            main(
                ["trace", "internet", "--scale", SCALE, "--code", "Jucele GPU"]
            )
            == 0
        )
        events = json.loads(capsys.readouterr().out)
        assert any(e["cat"] == "round" for e in events)


class TestProfile:
    def _profile(self, capsys, *extra):
        assert main(["profile", "internet", "--scale", SCALE, *extra]) == 0
        return json.loads(capsys.readouterr().out)

    def test_json_profile_sums(self, capsys):
        p = self._profile(capsys)
        assert p["schema"].startswith("repro.obs.profile/")
        total = sum(b["seconds"] for b in p["kernels"].values())
        assert abs(total - p["modeled_seconds"]) <= 1e-9
        assert p["graph"]["name"] == "internet"
        assert p["metrics"]["run.rounds"] == p["rounds"]

    def test_deopt_stage_flag(self, capsys):
        p = self._profile(capsys, "--stage", "No Atomic Guards")
        assert p["config"]["atomic_guards"] is False
        assert p["metrics"]["atomics.elided"] == 0

    def test_unknown_stage_errors(self):
        with pytest.raises(SystemExit):
            main(
                ["profile", "internet", "--scale", SCALE, "--stage", "bogus"]
            )

    def test_baseline_diff(self, capsys, tmp_path):
        base = tmp_path / "base.json"
        assert (
            main(["profile", "internet", "--scale", SCALE, "--out", str(base)])
            == 0
        )
        capsys.readouterr()
        assert (
            main(
                [
                    "profile",
                    "internet",
                    "--scale",
                    SCALE,
                    "--stage",
                    "No Atomic Guards",
                    "--baseline",
                    str(base),
                ]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["comparable"] is True
        assert payload["entries"]["atomics.elided"]["b"] == 0

    def test_text_format(self, capsys):
        assert (
            main(
                ["profile", "internet", "--scale", SCALE, "--format", "text"]
            )
            == 0
        )
        assert "ms modeled" in capsys.readouterr().out

    def test_chrome_format(self, capsys):
        assert (
            main(
                ["profile", "internet", "--scale", SCALE, "--format", "chrome"]
            )
            == 0
        )
        events = json.loads(capsys.readouterr().out)
        assert all(e["ph"] == "X" for e in events)
