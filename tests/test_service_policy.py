"""Service-level tests for overload-safe serving (ServiceConfig.policy).

Covers the integration surface: typed shed/degraded/quarantined/
cancelled outcomes and their exit codes, priority-ordered shedding,
stale degraded serving, breaker open/recover through the service,
retry recovery, the dedup-leak regression, ``close(wait=False)``
semantics, concurrent recovery-ladder chaos queries, and the
chaos-under-load campaign.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import EXIT_OVERLOADED, DeadlineExceeded, DeviceFault
from repro.resilience import run_service_campaign
from repro.resilience.policy import PolicyConfig
from repro.service import MSTService, Query, ServiceConfig, execute_query
from repro.service.engine import Ticket
from repro.service.outcome import SERVED_FALLBACK, SERVED_STALE, QueryOutcome

SCALE = 0.06


def q(input="internet", **kw):
    kw.setdefault("scale", SCALE)
    return Query(input=input, **kw)


def poison(**kw):
    """A deterministically failing spec: unguarded kernel-fail injection."""
    kw.setdefault("fault_seed", 1234)
    return q(n_faults=1, fault_kinds=("kernel-fail",), check_cadence=0, **kw)


def service(policy=None, **kw):
    kw.setdefault("workers", 2)
    return MSTService(ServiceConfig(policy=policy, **kw))


def no_sleep(svc):
    """Retry backoffs resolve instantly (the schedule is still drawn)."""
    assert svc.policy is not None
    svc.policy.sleep = lambda s: None
    return svc


# ----------------------------------------------------------------------
# Config plumbing
# ----------------------------------------------------------------------
class TestConfig:
    def test_all_off_policy_is_never_constructed(self):
        svc = service(policy=PolicyConfig())
        assert svc.policy is None
        svc.close()

    def test_policy_requires_thread_pool(self):
        with pytest.raises(ValueError, match="pool='thread'"):
            ServiceConfig(pool="process", policy=PolicyConfig(max_retries=1))

    def test_slowdown_validated(self):
        with pytest.raises(ValueError, match="slowdown"):
            ServiceConfig(slowdown=0.5)

    def test_priority_field_validated(self):
        from repro.service import QueryError

        with pytest.raises(QueryError, match="priority"):
            q(priority="high")

    def test_knobs_off_is_bit_identical_and_emits_no_policy_metrics(self):
        with service() as plain, service(policy=PolicyConfig()) as off:
            a = plain.submit(q(id="a")).outcome()
            b = off.submit(q(id="a")).outcome()
            assert a.ok and b.ok
            assert a.identity() == b.identity()
            assert not any(
                k.startswith("resilience.policy") for k in off.metrics()
            )
            assert off.status()["policy"] == {"enabled": False}


# ----------------------------------------------------------------------
# Admission / shedding
# ----------------------------------------------------------------------
class TestShedding:
    def test_shed_outcome_is_typed_with_overload_exit_code(self):
        pol = PolicyConfig(admission_rate=0.001, admission_burst=1)
        with service(policy=pol) as svc:
            first = svc.submit(q(id="in", priority=2)).outcome()
            assert first.ok
            out = svc.submit(
                q(id="out", priority=2, config={"filtering": False})
            ).outcome()
            assert out.status == "shed"
            assert out.error_kind == "overloaded"
            assert out.exit_code == EXIT_OVERLOADED
            assert out.policy["reason"] == "token-bucket"
            assert not out.served

    def test_lowest_priority_sheds_first(self):
        # burst 2, no refill: LOW needs 1 token spare, HIGH drains fully.
        pol = PolicyConfig(admission_rate=0.001, admission_burst=2)
        with service(policy=pol) as svc:
            assert svc.submit(q(id="l1", priority=0)).outcome().ok
            low = svc.submit(
                q(id="l2", priority=0, config={"filtering": False})
            ).outcome()
            assert low.status == "shed"
            high = svc.submit(
                q(id="h1", priority=2, config={"filtering": False})
            ).outcome()
            assert high.ok

    def test_shed_rate_feeds_metrics_and_slo(self):
        pol = PolicyConfig(admission_rate=0.001, admission_burst=1)
        with service(policy=pol) as svc:
            svc.submit(q(id="a", priority=2)).outcome()
            svc.submit(
                q(id="b", priority=2, config={"filtering": False})
            ).outcome()
            m = svc.metrics()
            assert m["resilience.policy.shed_rate"] == pytest.approx(0.5)
            shed_slo = next(
                s for s in svc.slo_statuses() if s.spec.name == "shed-rate"
            )
            assert shed_slo.sli == pytest.approx(0.5)

    def test_cache_hits_bypass_admission(self):
        pol = PolicyConfig(admission_rate=0.001, admission_burst=1)
        with service(policy=pol) as svc:
            assert svc.submit(q(id="warm", priority=2)).outcome().ok
            # Bucket is empty, but the identical query answers from cache.
            again = svc.submit(q(id="warm2", priority=0)).outcome()
            assert again.ok and again.cache_hit


# ----------------------------------------------------------------------
# Stale degraded serving
# ----------------------------------------------------------------------
class TestStaleServing:
    def test_shed_query_degrades_to_stale_cache(self):
        pol = PolicyConfig(
            admission_rate=0.001,
            admission_burst=1,
            serve_stale=True,
            fresh_ttl_s=1e-6,  # everything cached is immediately stale
        )
        with service(policy=pol) as svc:
            fresh = svc.submit(q(id="seed", priority=2)).outcome()
            assert fresh.ok
            time.sleep(0.01)
            out = svc.submit(q(id="later", priority=2)).outcome()
            assert out.status == "degraded"
            assert out.served_by == SERVED_STALE
            assert out.served and not out.ok
            assert out.exit_code == 0
            assert out.policy["degraded"] == "stale-cache"
            assert out.policy["staleness_s"] > 0
            assert out.identity() == fresh.identity()

    def test_stale_entries_do_not_serve_as_normal_hits(self):
        pol = PolicyConfig(serve_stale=True, fresh_ttl_s=1e-6)
        with service(policy=pol) as svc:
            svc.submit(q(id="a")).outcome()
            time.sleep(0.01)
            executed = svc.registry.counter("service.executed").value
            out = svc.submit(q(id="b")).outcome()  # admitted: re-executes
            assert out.ok and not out.cache_hit
            assert svc.registry.counter("service.executed").value > executed

    def test_too_old_entries_are_not_served_stale(self):
        pol = PolicyConfig(
            admission_rate=0.001,
            admission_burst=1,
            serve_stale=True,
            fresh_ttl_s=1e-6,
            stale_max_age_s=1e-6,
        )
        with service(policy=pol) as svc:
            svc.submit(q(id="seed", priority=2)).outcome()
            time.sleep(0.01)
            out = svc.submit(q(id="later", priority=2)).outcome()
            assert out.status == "shed"  # beyond stale_max_age: typed shed


# ----------------------------------------------------------------------
# Retries
# ----------------------------------------------------------------------
class TestRetries:
    def test_transient_failure_retries_and_recovers(self, monkeypatch):
        import repro.service.engine as engine

        real = engine.execute_query
        failures = {"left": 2}

        def flaky(query, graph=None, **kw):
            if query.id == "flaky" and failures["left"] > 0:
                failures["left"] -= 1
                return QueryOutcome.failure(query, DeviceFault("transient"))
            return real(query, graph, **kw)

        monkeypatch.setattr(engine, "execute_query", flaky)
        pol = PolicyConfig(max_retries=3, backoff_base_s=1e-4, backoff_cap_s=1e-3)
        with no_sleep(service(policy=pol)) as svc:
            out = svc.submit(q(id="flaky")).outcome()
            assert out.ok
            assert out.policy["retries"] == 2
            assert out.policy["backoff_s"] > 0
            # The recovered result is cached under the original spec.
            again = svc.submit(q(id="flaky-again")).outcome()
            assert again.ok and again.cache_hit

    def test_budget_exhaustion_returns_the_error(self):
        pol = PolicyConfig(max_retries=2, backoff_base_s=1e-4, backoff_cap_s=1e-3)
        with no_sleep(service(policy=pol)) as svc:
            out = svc.submit(poison(id="doomed")).outcome()
            assert out.status == "error"
            assert out.error_kind == "fault"
            assert out.policy["retries"] == 2

    def test_nontransient_failures_never_retry(self):
        pol = PolicyConfig(max_retries=3)
        with no_sleep(service(policy=pol)) as svc:
            out = svc.submit(q(id="bad", input="no-such-input")).outcome()
            assert out.status == "error"
            assert out.error_kind == "input"
            assert "retries" not in out.policy

    def test_retry_schedule_is_deterministic_per_seed(self, monkeypatch):
        import repro.service.engine as engine

        real = engine.execute_query

        def run(seed):
            failures = {"left": 2}

            def flaky(query, graph=None, **kw):
                if query.id.startswith("d") and failures["left"] > 0:
                    failures["left"] -= 1
                    return QueryOutcome.failure(query, DeviceFault("boom"))
                return real(query, graph, **kw)

            monkeypatch.setattr(engine, "execute_query", flaky)
            delays = []
            pol = PolicyConfig(max_retries=3, seed=seed)
            with service(policy=pol) as svc:
                svc.policy.sleep = delays.append
                assert svc.submit(q(id="d1")).outcome().ok
            return delays

        assert run(5) == run(5)
        assert run(5) != run(6)


# ----------------------------------------------------------------------
# Deadlines
# ----------------------------------------------------------------------
class TestDeadlines:
    def test_solver_deadline_raises_typed_error(self):
        from repro.core.eclmst import ecl_mst
        from repro.generators import suite

        g = suite.build("internet", scale=SCALE)
        with pytest.raises(DeadlineExceeded):
            ecl_mst(g, deadline=time.perf_counter() - 1.0)

    def test_expired_deadline_becomes_timeout_outcome(self):
        out = execute_query(
            q(id="late"), deadline=time.perf_counter() - 1.0
        )
        assert out.status == "error" or out.error_kind == "timeout"
        assert out.error_kind == "timeout"


# ----------------------------------------------------------------------
# Circuit breaker through the service
# ----------------------------------------------------------------------
class TestBreaker:
    POL = dict(breaker_threshold=2, breaker_cooldown_s=0.05)

    def test_opens_fails_fast_then_recovers(self):
        pol = PolicyConfig(**self.POL)
        with service(policy=pol) as svc:
            for i in range(2):
                out = svc.submit(poison(id=f"p{i}", fault_seed=50 + i)).outcome()
                assert out.status == "error"
            snaps = svc.policy.breaker_snapshots()
            assert len(snaps) == 1 and snaps[0]["state"] == "open"
            digest = snaps[0]["graph"]
            # Healthy traffic on the broken graph is shed, fast.
            shed = svc.submit(q(id="blocked")).outcome()
            assert shed.status == "shed"
            assert shed.policy["reason"] == "breaker-open"
            assert shed.exit_code == EXIT_OVERLOADED
            # After the cooldown a probe executes and closes it.
            deadline = time.time() + 5.0
            closed = False
            k = 0
            while time.time() < deadline and not closed:
                time.sleep(0.03)
                out = svc.submit(q(id=f"probe{k}")).outcome()
                k += 1
                closed = (
                    out.ok
                    and svc.policy.breaker(digest).state == "closed"
                )
            assert closed
            transitions = svc.policy.breaker(digest).transitions
            assert transitions[0][1] == "open"
            assert transitions[-1][1] == "closed"
            assert svc.status()["policy"]["breakers"][0]["state"] == "closed"

    def test_transitions_replay_for_same_seed_and_plan(self):
        def drive(seed):
            pol = PolicyConfig(seed=seed, **self.POL)
            with service(policy=pol, workers=1) as svc:
                for i in range(3):
                    svc.submit(poison(id=f"p{i}", fault_seed=50 + i)).outcome()
                [b] = svc.policy.breaker_snapshots()
                return list(svc.policy.breaker(b["graph"]).transitions)

        assert drive(1) == drive(1)

    def test_submit_fast_fail_uses_learned_fingerprint(self):
        pol = PolicyConfig(**self.POL)
        with service(policy=pol) as svc:
            warm = svc.submit(q(id="warm")).outcome()  # learns spec->rkey
            assert warm.ok
            for i in range(2):
                svc.submit(poison(id=f"p{i}", fault_seed=60 + i)).outcome()
            # A *fresh-spec* healthy query can't fast-fail at submit (no
            # learned fingerprint) — but the cached one must still serve.
            again = svc.submit(q(id="warm2")).outcome()
            assert again.ok and again.cache_hit


# ----------------------------------------------------------------------
# Quarantine through the service
# ----------------------------------------------------------------------
class TestQuarantine:
    def test_poison_spec_is_quarantined_and_refused(self):
        pol = PolicyConfig(quarantine_after=2)
        with service(policy=pol) as svc:
            for i in range(2):
                out = svc.submit(poison(id=f"try{i}")).outcome()
                assert out.status == "error"
            refused = svc.submit(poison(id="refused")).outcome()
            assert refused.status == "quarantined"
            assert refused.exit_code == EXIT_OVERLOADED
            assert refused.policy["reason"] == "quarantine"
            assert refused.policy["failures"] == 2
            # A different spec on the same graph still runs.
            ok = svc.submit(q(id="healthy")).outcome()
            assert ok.ok
            assert svc.status()["policy"]["quarantined"]


# ----------------------------------------------------------------------
# Degraded serial fallback
# ----------------------------------------------------------------------
class TestSerialFallback:
    def test_exhausted_retries_fall_back_to_serial(self):
        pol = PolicyConfig(degrade_serial=True)
        with service(policy=pol) as svc:
            clean = svc.submit(q(id="ref", priority=2)).outcome()
            out = svc.submit(poison(id="broken")).outcome()
            assert out.status == "degraded"
            assert out.served_by == SERVED_FALLBACK
            assert out.policy["degraded"] == "serial-fallback"
            assert out.code == "ECL-MST"  # the client's code, not the
            assert "kruskal" in out.algorithm  # fallback's
            assert out.total_weight == clean.total_weight
            assert out.num_mst_edges == clean.num_mst_edges
            assert out.result_key == ""  # never cached as the real answer


# ----------------------------------------------------------------------
# Satellite regressions: dedup leak, close(wait=False)
# ----------------------------------------------------------------------
class TestDedupLeak:
    def test_timed_out_query_releases_its_dedup_key(self, monkeypatch):
        release = threading.Event()
        stalled = {"first": True}
        real = MSTService._resolve_graph

        def slow_resolve(self, query):
            if stalled.pop("first", False):
                release.wait(10.0)
            return real(self, query)

        monkeypatch.setattr(MSTService, "_resolve_graph", slow_resolve)
        svc = service(workers=2)
        try:
            spec = q(id="one", timeout_s=0.15)
            out1 = svc.submit(spec).outcome()
            assert out1.status == "timeout"
            # Regression: the stalled execution must not keep owning the
            # dedup key — an identical resubmission gets its own run.
            assert spec.spec_key() not in svc._inflight
            t2 = svc.submit(q(id="two", timeout_s=30.0))
            assert t2.primary  # not coalesced onto the dead ticket
            release.set()
            out2 = t2.outcome()
            assert out2.ok
        finally:
            release.set()
            svc.close()


class TestClose:
    def test_close_nowait_resolves_queued_tickets_as_cancelled(self):
        gate = threading.Event()
        svc = service(workers=1)
        real = MSTService._resolve_graph

        def blocking_resolve(self_, query):
            if query.id == "occupier":
                gate.wait(10.0)
            return real(self_, query)

        svc._resolve_graph = blocking_resolve.__get__(svc)
        try:
            occupier = svc.submit(q(id="occupier", timeout_s=30.0))
            queued = svc.submit(
                q(id="queued", timeout_s=30.0, config={"filtering": False})
            )
            svc.close(wait=False)
            out = queued.outcome()
            assert out.status == "cancelled"
            assert out.error_kind == "cancelled"
            assert out.exit_code == 1
            late = svc.submit(q(id="late")).outcome()
            assert late.status == "cancelled"
            assert "shut down" in late.error
        finally:
            gate.set()
            occupier.outcome()  # drain the worker

    def test_cancelled_outcomes_count_in_metrics(self):
        svc = service(workers=1)
        svc.close(wait=False)
        out = svc.submit(q(id="after")).outcome()
        assert out.status == "cancelled"


# ----------------------------------------------------------------------
# Recovery ladder under concurrent service load (satellite c)
# ----------------------------------------------------------------------
class TestConcurrentChaos:
    def test_parallel_chaos_queries_all_recover(self):
        clean = execute_query(q(id="ref"))
        assert clean.ok
        pol = PolicyConfig(max_retries=1, backoff_base_s=1e-4, backoff_cap_s=1e-3)
        with no_sleep(service(policy=pol, workers=3)) as svc:
            queries = [
                q(
                    id=f"chaos-{i}",
                    n_faults=1,
                    check_cadence=2,
                    fault_seed=9000 + i,
                    timeout_s=60.0,
                )
                for i in range(6)
            ]
            outcomes = svc.run_batch(queries)
            assert len(outcomes) == 6
            for out in outcomes:
                assert out.ok, out.error
                assert out.total_weight == clean.total_weight
                assert out.num_mst_edges == clean.num_mst_edges
                assert int(out.resilience.get("escaped", 0)) == 0
            # Pool and caches healthy afterwards: nothing leaked.
            assert svc._inflight == {}
            assert svc._depth == 0
            follow_up = svc.submit(q(id="after")).outcome()
            assert follow_up.ok


# ----------------------------------------------------------------------
# The chaos-under-load campaign
# ----------------------------------------------------------------------
class TestServiceCampaign:
    def test_campaign_passes_and_covers_the_drills(self):
        report = run_service_campaign(
            "internet", scale=SCALE, n_queries=6, workers=2
        )
        assert report.passed
        assert report.escaped == 0
        assert report.hung == 0
        assert report.untyped == 0
        assert report.breaker_opened and report.breaker_recovered
        assert report.statuses.get("quarantined", 0) >= 1
        assert sum(report.statuses.values()) == report.queries
        d = report.to_dict()
        assert d["passed"] is True
        assert "PASS" in report.render()


# ----------------------------------------------------------------------
# Outcome serialization for the new statuses
# ----------------------------------------------------------------------
class TestOutcomeWire:
    def test_shed_line_round_trips(self):
        from repro.errors import Overloaded

        out = QueryOutcome.failure(
            q(id="s"), Overloaded("shed", reason="token-bucket"), status="shed"
        )
        out.policy = {"reason": "token-bucket", "priority": 0}
        d = out.to_dict()
        assert d["status"] == "shed"
        assert d["exit_code"] == EXIT_OVERLOADED
        assert d["policy"]["reason"] == "token-bucket"
        assert "total_weight" not in d  # no payload on refusals
        back = QueryOutcome.from_dict(d)
        assert back.status == "shed" and not back.served

    def test_degraded_line_keeps_payload(self):
        with service(
            policy=PolicyConfig(
                admission_rate=0.001,
                admission_burst=1,
                serve_stale=True,
                fresh_ttl_s=1e-6,
            )
        ) as svc:
            svc.submit(q(id="seed", priority=2)).outcome()
            time.sleep(0.01)
            out = svc.submit(q(id="later", priority=2)).outcome()
            d = out.to_dict()
            assert d["status"] == "degraded"
            assert d["total_weight"] > 0
            assert d["served_by"] == SERVED_STALE

    def test_ticket_reexport_unused_guard(self):
        # Ticket stays part of the public engine surface.
        assert Ticket.__name__ == "Ticket"
