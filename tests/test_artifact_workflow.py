"""Artifact-style workflow tests (set_up / run_all_* / generate_*)."""

import csv

import pytest

from repro.bench import artifact
from repro.bench.harness import SYSTEM2

SCALE = 0.05


@pytest.fixture(scope="module")
def workdir(tmp_path_factory):
    d = tmp_path_factory.mktemp("artifact")
    artifact.run_all_compare(
        d, system=SYSTEM2, scale=SCALE, codes=("ECL-MST", "Jucele GPU", "PBBS Ser.")
    )
    artifact.run_all_deoptimize(d, system=SYSTEM2, scale=SCALE)
    return d


class TestSetUp:
    def test_writes_all_inputs(self, tmp_path):
        paths = artifact.set_up(tmp_path / "inputs", scale=0.05)
        assert len(paths) == 17
        for p in paths.values():
            assert p.exists() and p.stat().st_size > 0

    def test_written_graphs_load_back(self, tmp_path):
        from repro.graph.io import load_ecl

        paths = artifact.set_up(tmp_path / "inputs", scale=0.05)
        g = load_ecl(paths["internet"])
        assert g.num_vertices > 0


class TestRunAllCompare:
    def test_one_csv_per_code(self, workdir):
        names = {p.name for p in workdir.glob("*_out.csv")}
        assert {"ecl_mst_out.csv", "jucele_gpu_out.csv", "pbbs_ser_out.csv"} <= names

    def test_csv_rows_cover_inputs(self, workdir):
        with open(workdir / "ecl_mst_out.csv") as f:
            rows = list(csv.DictReader(f))
        assert len(rows) == 17
        assert all(float(r["seconds"]) > 0 for r in rows)

    def test_nc_cells_written(self, workdir):
        with open(workdir / "jucele_gpu_out.csv") as f:
            rows = list(csv.DictReader(f))
        nc = [r for r in rows if r["seconds"] == "NC"]
        assert len(nc) == 8  # the 8 multi-component inputs

    def test_weights_agree_across_codes(self, workdir):
        weights = {}
        for name in ("ecl_mst_out.csv", "pbbs_ser_out.csv"):
            with open(workdir / name) as f:
                for r in csv.DictReader(f):
                    weights.setdefault(r["input"], set()).add(r["total_weight"])
        for inp, vals in weights.items():
            assert len(vals) == 1, inp


class TestGenerateTables:
    def test_compare_table_from_csv(self, workdir):
        out = artifact.generate_compare_tables(workdir)
        assert out.startswith("input,")
        assert "MSF GeoMean" in out and "MST GeoMean" in out
        # Jucele's MSF geomean must be NC, its MST geomean numeric.
        msf_row = next(l for l in out.splitlines() if l.startswith("MSF GeoMean"))
        assert "NC" in msf_row

    def test_deopt_table_from_csv(self, workdir):
        out = artifact.generate_deopt_tables(workdir)
        assert "No Impl. Path Compr." in out
        assert "MST GeoMean" in out
        assert len(out.splitlines()) == 11  # header + 9 inputs + geomean

    def test_missing_directory_errors(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            artifact.generate_compare_tables(tmp_path / "empty")
