"""Unit tests for the individual ECL-MST kernels (below the driver)."""

import numpy as np
import pytest

from repro.core.config import EclMstConfig
from repro.core.kernels import (
    MstState,
    kernel1_reserve,
    kernel2_union,
    kernel3_reset,
    kernel_init_populate,
)
from repro.gpusim.atomics import KEY_INFINITY, unpack_edge_id
from repro.gpusim.costmodel import Device
from repro.gpusim.spec import RTX_3080_TI

from helpers import make_graph


def _state(graph, **cfg_kw):
    cfg = EclMstConfig(**cfg_kw) if cfg_kw else EclMstConfig()
    return MstState.create(graph, cfg, Device(RTX_3080_TI))


class TestInitPopulate:
    def test_single_direction_counts(self, paper_figure1):
        state = _state(paper_figure1)
        appended = kernel_init_populate(state, None, phase=0)
        assert appended == paper_figure1.num_edges  # one slot per edge

    def test_both_directions_counts(self, paper_figure1):
        state = _state(paper_figure1, single_direction=False)
        appended = kernel_init_populate(state, None, phase=0)
        assert appended == paper_figure1.num_directed_edges

    def test_phase1_threshold_filters(self, paper_figure1):
        state = _state(paper_figure1)
        appended = kernel_init_populate(state, threshold=3, phase=1)
        # Weights 1, 2 are strictly under 3 -> two entries.
        assert appended == 2
        assert sorted(state.wl.front.w.tolist()) == [1, 2]

    def test_phase2_inverts_threshold(self, paper_figure1):
        state = _state(paper_figure1)
        appended = kernel_init_populate(state, threshold=3, phase=2)
        assert appended == 3  # weights 3, 4, 5

    def test_phase2_drops_internal_edges(self, triangle):
        state = _state(triangle)
        # Pretend phase 1 already merged everything into one set.
        state.parent[:] = 0
        appended = kernel_init_populate(state, threshold=10**9, phase=2)
        assert appended == 0  # all edges are cycles now

    def test_init_charges_one_launch(self, triangle):
        state = _state(triangle)
        kernel_init_populate(state, None, phase=0)
        assert state.device.counters.launches_of("init") == 1


class TestKernel1:
    def test_reserves_minimum_per_set(self, paper_figure1):
        state = _state(paper_figure1)
        kernel_init_populate(state, None, phase=0)
        survivors = kernel1_reserve(state)
        assert survivors == paper_figure1.num_edges  # nothing merged yet
        # Vertex A(0) touches edges (0,1,w4) and (0,2,w1): min key is
        # the weight-1 edge.
        assert int(unpack_edge_id([state.min_edge[0]])[0]) >= 0
        from repro.gpusim.atomics import unpack_weight

        assert int(unpack_weight([state.min_edge[0]])[0]) == 1

    def test_discards_internal_edges(self, triangle):
        state = _state(triangle)
        kernel_init_populate(state, None, phase=0)
        state.parent[:] = 0  # everything one set already
        survivors = kernel1_reserve(state)
        assert survivors == 0

    def test_appends_survivors_to_back_buffer(self, triangle):
        state = _state(triangle)
        kernel_init_populate(state, None, phase=0)
        kernel1_reserve(state)
        state.wl.swap()
        assert len(state.wl.front) == 3

    def test_topology_mode_appends_nothing(self, triangle):
        state = _state(triangle, data_driven=False)
        kernel_init_populate(state, None, phase=0)
        kernel1_reserve(state)
        saved = state.wl.front
        state.wl.swap()
        assert len(state.wl.front) == 0
        state.wl.front = saved  # driver restores it in topology mode


class TestKernel2And3:
    def _one_round(self, graph, **cfg_kw):
        state = _state(graph, **cfg_kw)
        kernel_init_populate(state, None, phase=0)
        kernel1_reserve(state)
        state.wl.swap()
        return state

    def test_winners_marked_and_unioned(self, paper_figure1):
        state = self._one_round(paper_figure1)
        added = kernel2_union(state)
        # Round 1 of Figure 2's narration: at least 2 edges commit.
        assert added >= 2
        assert state.in_mst.sum() == added
        # Sets merged: fewer roots than vertices.
        roots = (state.parent == np.arange(5)).sum()
        assert roots == 5 - added

    def test_reset_clears_touched_slots(self, paper_figure1):
        state = self._one_round(paper_figure1)
        kernel2_union(state)
        kernel3_reset(state)
        assert np.all(state.min_edge == KEY_INFINITY)

    def test_empty_worklist_is_noop(self, triangle):
        state = _state(triangle)
        assert kernel2_union(state) == 0
        kernel3_reset(state)  # must not raise
        assert state.device.counters.launches_of("k3_reset") == 0

    def test_mirrored_duplicates_commit_once(self, triangle):
        state = self._one_round(triangle, single_direction=False)
        added = kernel2_union(state)
        # Both directions are in the worklist but each edge counts once.
        assert added == int(state.in_mst.sum())


class TestFindEntries:
    def test_implicit_mode_readonly(self, path_graph):
        state = _state(path_graph)
        state.parent[5] = 4
        before = state.parent.copy()
        roots, loads, writes = state.find_entries(np.array([5]))
        assert roots[0] == 4 and writes == 0
        assert np.array_equal(state.parent, before)

    def test_explicit_mode_halves_paths(self, path_graph):
        state = _state(path_graph, implicit_path_compression=False)
        for i in range(1, 6):
            state.parent[i] = i - 1
        roots, loads, writes = state.find_entries(np.array([5]))
        assert roots[0] == 0
        assert writes > 0  # halving rewrote part of the chain
