"""Generator tests: every suite input must match its Table-2 profile."""

import numpy as np
import pytest

from repro.generators import (
    delaunay_graph,
    erdos_renyi,
    grid2d,
    internet_topology,
    kronecker,
    preferential_attachment,
    random_k_out,
    rmat,
    road_network,
    suite,
)
from repro.graph.properties import connected_components, graph_info


class TestGrid:
    def test_shape(self):
        g = grid2d(5)
        assert g.num_vertices == 25
        assert g.num_edges == 2 * 5 * 4  # 2 * side * (side-1)

    def test_degrees_bounded_by_four(self):
        g = grid2d(8)
        assert g.degrees().max() == 4
        assert g.degrees().min() == 2  # corners

    def test_connected(self):
        assert connected_components(grid2d(6))[0] == 1

    def test_minimum_side(self):
        assert grid2d(1).num_edges == 0
        with pytest.raises(ValueError):
            grid2d(0)

    def test_seed_changes_weights_not_structure(self):
        a, b = grid2d(5, seed=0), grid2d(5, seed=1)
        assert np.array_equal(a.col_idx, b.col_idx)
        assert not np.array_equal(a.weights, b.weights)


class TestRandom:
    def test_average_degree_near_2k(self):
        g = random_k_out(2000, 4, seed=1)
        avg = g.num_directed_edges / g.num_vertices
        assert 7.0 < avg <= 8.0

    def test_connected_for_k4(self):
        assert connected_components(random_k_out(2000, 4, seed=1))[0] == 1

    def test_k_validation(self):
        with pytest.raises(ValueError):
            random_k_out(10, 0)

    def test_erdos_renyi_size(self):
        g = erdos_renyi(100, 300, seed=2)
        assert 200 < g.num_edges <= 300


class TestRmatKron:
    def test_rmat_vertex_count(self):
        assert rmat(8).num_vertices == 256

    def test_rmat_many_components(self):
        g = rmat(10, edge_factor=7.4, seed=0)
        assert connected_components(g)[0] > 5  # RMAT leaves isolated IDs

    def test_rmat_skewed_degrees(self):
        g = rmat(10, seed=0)
        degs = g.degrees()
        assert degs.max() > 10 * max(1.0, degs[degs > 0].mean())

    def test_kron_permuted(self):
        # Graph500 permutation decouples degree from vertex ID: the
        # low-ID bias of raw RMAT must not survive.
        g = kronecker(10, seed=0)
        degs = g.degrees().astype(float)
        n = g.num_vertices
        low = degs[: n // 8].mean()
        assert low < 6 * max(1.0, degs.mean())

    def test_kron_high_avg_degree(self):
        g = kronecker(10, edge_factor=24.0, seed=0)
        assert g.num_directed_edges / g.num_vertices > 15


class TestRoads:
    def test_connected(self):
        assert connected_components(road_network(500, seed=4))[0] == 1

    def test_target_degree(self):
        for target in (2.1, 2.4, 2.8):
            g = road_network(1500, target_avg_degree=target, seed=4)
            avg = g.num_directed_edges / g.num_vertices
            assert abs(avg - target) < 0.2, (target, avg)

    def test_small_max_degree(self):
        g = road_network(1500, seed=4)
        assert g.degrees().max() <= 10

    def test_distance_weights_positive(self):
        g = road_network(200, seed=4)
        assert g.weights.min() >= 1

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            road_network(2)


class TestDelaunay:
    def test_planar_edge_bound(self):
        g = delaunay_graph(400, seed=5)
        assert g.num_edges <= 3 * 400 - 6

    def test_connected(self):
        assert connected_components(delaunay_graph(400, seed=5))[0] == 1

    def test_avg_degree_near_six(self):
        g = delaunay_graph(2000, seed=5)
        avg = g.num_directed_edges / g.num_vertices
        assert 5.0 < avg < 6.2

    def test_minimum_points(self):
        with pytest.raises(ValueError):
            delaunay_graph(2)


class TestScaleFree:
    def test_component_count_control(self):
        g = preferential_attachment(800, 4, num_components=5, seed=6)
        assert connected_components(g)[0] == 5

    def test_single_component_default(self):
        g = preferential_attachment(800, 4, seed=6)
        assert connected_components(g)[0] == 1

    def test_hub_degrees(self):
        g = preferential_attachment(2000, 5, seed=6)
        degs = g.degrees()
        assert degs.max() > 8 * degs.mean()

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            preferential_attachment(3, 5)

    def test_internet_low_avg_high_hub(self):
        g = internet_topology(2000, seed=7)
        avg = g.num_directed_edges / g.num_vertices
        assert 2.5 < avg < 3.7
        assert g.degrees().max() > 20


class TestSuite:
    def test_all_seventeen_inputs_present(self):
        assert len(suite.SUITE) == 17
        assert set(suite.PAPER_TABLE2) == set(suite.SUITE)

    def test_mst_inputs_are_nine(self):
        # Table 3/4 list 9 single-component ("MST") inputs.
        assert len(suite.MST_INPUT_NAMES) == 9

    @pytest.mark.parametrize("name", suite.INPUT_NAMES)
    def test_input_matches_profile(self, name):
        g = suite.build(name, scale=0.25)
        spec = suite.SUITE[name]
        assert g.name == name
        info = graph_info(g, spec.kind)
        if spec.single_component:
            assert info.num_components == 1, name
        else:
            assert info.num_components > 1, name
        paper = suite.PAPER_TABLE2[name]
        # Average degree within a factor of ~2 of the paper's value.
        assert 0.45 * paper["davg"] < info.avg_degree < 2.2 * paper["davg"], (
            name,
            info.avg_degree,
        )

    def test_unknown_name_rejected(self):
        with pytest.raises(KeyError, match="unknown input"):
            suite.build("no-such-graph")

    def test_build_all(self):
        graphs = suite.build_all(scale=0.1)
        assert set(graphs) == set(suite.INPUT_NAMES)

    def test_scale_changes_size(self):
        small = suite.build("r4-2e23.sym", scale=0.1)
        big = suite.build("r4-2e23.sym", scale=0.4)
        assert big.num_vertices > 2 * small.num_vertices

    def test_deterministic_per_seed(self):
        a = suite.build("rmat16.sym", scale=0.2, seed=3)
        b = suite.build("rmat16.sym", scale=0.2, seed=3)
        assert np.array_equal(a.col_idx, b.col_idx)
        assert np.array_equal(a.weights, b.weights)
