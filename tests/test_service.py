"""Service-level tests: caching, dedup, timeout, fault isolation."""

from __future__ import annotations

import dataclasses

import pytest

from repro.service import (
    LRUCache,
    MSTService,
    Query,
    QueryError,
    ServiceConfig,
    batch_exit_code,
    execute_query,
    parse_batch_lines,
    sweep_queries,
)
from repro.service.outcome import QueryOutcome, classify_error

SCALE = 0.06


def q(input="internet", **kw):
    kw.setdefault("scale", SCALE)
    return Query(input=input, **kw)


def service(**kw):
    kw.setdefault("workers", 2)
    return MSTService(ServiceConfig(**kw))


# ----------------------------------------------------------------------
# Query model
# ----------------------------------------------------------------------
class TestQuery:
    def test_defaults_and_id(self):
        query = q()
        assert query.id == "internet"
        assert query.code == "ECL-MST"

    def test_rejects_unknown_field(self):
        with pytest.raises(QueryError, match="unknown field"):
            Query.from_dict({"input": "internet", "bogus": 1})

    def test_rejects_bad_json(self):
        with pytest.raises(QueryError, match="malformed query JSON"):
            Query.from_json_line("{nope")

    def test_rejects_bad_values(self):
        with pytest.raises(QueryError, match="system"):
            q(system=7)
        with pytest.raises(QueryError, match="scale"):
            q(scale=-1)
        with pytest.raises(QueryError, match="stage"):
            q(stage="No Such Stage")
        with pytest.raises(QueryError, match="only to ECL-MST"):
            q(code="qKruskal", config={"filtering": False})
        with pytest.raises(QueryError, match="fault kind"):
            q(n_faults=1, fault_kinds=["martian-ray"])

    def test_unknown_config_field(self):
        with pytest.raises(QueryError, match="unknown config field"):
            q(config={"warp_speed": 9}).resolved_config()

    def test_spec_key_ignores_label_and_timeout(self):
        a = q(id="a", timeout_s=1.0)
        b = q(id="b", timeout_s=9.0)
        assert a.spec_key() == b.spec_key()

    def test_spec_key_distinguishes_semantics(self):
        base = q()
        assert base.spec_key() != q(config={"filtering": False}).spec_key()
        assert base.spec_key() != q(system=1).spec_key()
        assert base.spec_key() != q(scale=SCALE * 2).spec_key()

    def test_stage_equals_explicit_config(self):
        staged = q(stage="No Atomic Guards")
        explicit = q(config={"atomic_guards": False})
        assert staged.config_hash() == explicit.config_hash()

    def test_roundtrip_dict(self):
        query = q(config={"filtering": False}, timeout_s=2.0, verify=True)
        again = Query.from_dict(query.to_dict())
        assert again.spec_key() == query.spec_key()


# ----------------------------------------------------------------------
# LRU cache
# ----------------------------------------------------------------------
class TestLRUCache:
    def test_eviction_order(self):
        c = LRUCache(2)
        c.put("a", 1), c.put("b", 2)
        assert c.get("a") == 1  # refresh a
        c.put("c", 3)  # evicts b
        assert c.get("b") is None
        assert c.get("a") == 1 and c.get("c") == 3
        assert c.stats()["evictions"] == 1

    def test_zero_capacity_disables(self):
        c = LRUCache(0)
        c.put("a", 1)
        assert c.get("a") is None
        assert len(c) == 0


# ----------------------------------------------------------------------
# Engine: the three pipeline levels
# ----------------------------------------------------------------------
class TestResultCache:
    def test_warm_is_bit_identical_to_cold(self):
        with service() as svc:
            cold = svc.run_batch([q(id="cold")])[0]
            warm = svc.run_batch([q(id="warm")])[0]
        # A separate service instance proves cold-run determinism too.
        with service() as other:
            other_cold = other.run_batch([q(id="cold2")])[0]
        assert cold.ok and warm.ok and other_cold.ok
        assert not cold.cache_hit
        assert warm.cache_hit and warm.served_by == "result-cache"
        assert warm.identity() == cold.identity()
        assert other_cold.identity() == cold.identity()
        # Identity covers the full bit-level surface: MST weight, the
        # edge-set digest, and every counters-derived metric.
        assert warm.mst_digest == cold.mst_digest
        assert warm.metrics == cold.metrics

    def test_different_config_misses(self):
        with service() as svc:
            a = svc.run_batch([q(id="a")])[0]
            b = svc.run_batch([q(id="b", config={"filtering": False})])[0]
        assert not b.cache_hit
        assert a.result_key != b.result_key

    def test_build_cache_reuses_graph_across_configs(self):
        with service() as svc:
            svc.run_batch([q(id="a")])
            svc.run_batch([q(id="b", config={"filtering": False})])
            m = svc.metrics()
        assert m["service.graph_cache_hits"] >= 1.0
        assert m["service.executed"] == 2.0

    def test_same_graph_different_spec_hits_via_fingerprint(self, tmp_path):
        # A saved copy of a suite input resolves to the same weighted
        # graph, so the result cache hits across *different* specs.
        from repro.generators import suite
        from repro.graph.io import save_ecl

        g = suite.build("internet", scale=SCALE)
        path = tmp_path / "copy.ecl"
        save_ecl(g, path)
        with service() as svc:
            a = svc.run_batch([q(id="suite")])[0]
            b = svc.run_batch([Query(input=str(path), id="file")])[0]
        assert a.ok and b.ok
        assert b.served_by == "result-cache"
        assert b.identity()["mst_digest"] == a.identity()["mst_digest"]


class TestDedup:
    def test_concurrent_identical_queries_execute_once(self):
        with service(workers=4) as svc:
            n = 6
            outs = svc.run_batch(
                [q(id=f"d{i}", input="2d-2e20.sym", scale=0.2) for i in range(n)]
            )
            m = svc.metrics()
        assert all(o.ok for o in outs)
        assert m["service.executed"] == 1.0
        assert m["service.dedup_hits"] == n - 1
        assert len({o.mst_digest for o in outs}) == 1
        # Exactly one waiter is the primary execution; the rest are
        # marked as coalesced or cache servings.
        assert sum(1 for o in outs if not o.cache_hit) == 1

    def test_distinct_queries_do_not_coalesce(self):
        with service() as svc:
            outs = svc.run_batch(
                [q(id="x"), q(id="y", config={"filtering": False})]
            )
            m = svc.metrics()
        assert all(o.ok for o in outs)
        assert m["service.executed"] == 2.0
        assert m["service.dedup_hits"] == 0.0


class TestTimeout:
    def test_queued_queries_cancel_cleanly(self):
        with service(workers=1) as svc:
            tickets = [svc.submit(q(id="big", input="kron_g500-logn21", scale=0.4))]
            tickets += [
                svc.submit(q(id=f"t{i}", timeout_s=0.001)) for i in range(3)
            ]
            outs = [t.outcome() for t in tickets]
            # The pool must stay healthy for later queries.
            after = svc.run_batch([q(id="after")])[0]
            m = svc.metrics()
        assert outs[0].ok
        for o in outs[1:]:
            assert o.status == "timeout"
            assert o.error_kind == "timeout"
            assert o.exit_code == 1
            assert o.total_weight == 0  # never carries a partial result
        assert after.ok
        assert m["service.timeouts"] == 3.0

    def test_default_timeout_from_service_config(self):
        with service(workers=1, default_timeout_s=0.0001) as svc:
            # Occupy the single worker so the next query waits past its
            # (service-default) deadline in the queue.
            first = svc.submit(q(id="occupier", input="2d-2e20.sym", scale=0.3, timeout_s=60))
            timed = svc.submit(q(id="late"))
            assert timed.outcome().status == "timeout"
            assert first.outcome().ok


class TestFaultIsolation:
    def test_faulty_query_does_not_poison_batch(self):
        clean = [q(id="n1"), q(id="n2", input="2d-2e20.sym")]
        with service() as svc:
            baseline = svc.run_batch(clean)
        batch = [
            clean[0],
            q(id="bad", n_faults=2, fault_seed=3, fault_kinds=["kernel-fail"]),
            clean[1],
        ]
        with service() as svc:
            outs = svc.run_batch(batch)
        good1, bad, good2 = outs
        assert bad.status == "error"
        assert bad.error_kind == "fault"
        assert bad.exit_code == 5
        assert good1.ok and good2.ok
        assert good1.identity() == baseline[0].identity()
        assert good2.identity() == baseline[1].identity()
        assert batch_exit_code(outs) == 5

    def test_guarded_chaos_query_recovers(self):
        # With the recovery ladder on, the same faults are absorbed and
        # the result matches the clean run bit for bit.
        with service() as svc:
            clean = svc.run_batch([q(id="clean")])[0]
        with service() as svc:
            guarded = svc.run_batch(
                [
                    q(
                        id="guarded",
                        check_cadence=1,
                        n_faults=1,
                        fault_seed=5,
                        fault_kinds=["bitflip-parent"],
                    )
                ]
            )[0]
        assert guarded.ok
        assert guarded.resilience  # the ladder was engaged per-query
        assert guarded.mst_digest == clean.mst_digest
        assert guarded.total_weight == clean.total_weight

    def test_error_outcomes_never_cached(self):
        with service() as svc:
            bad = q(id="bad", n_faults=1, fault_seed=3, fault_kinds=["kernel-fail"])
            first = svc.run_batch([bad])[0]
            second = svc.run_batch([dataclasses.replace(bad, id="bad2")])[0]
            m = svc.metrics()
        assert first.status == "error" and second.status == "error"
        assert m["service.result_cache_hits"] == 0.0


# ----------------------------------------------------------------------
# Batch parsing and exit codes
# ----------------------------------------------------------------------
class TestBatch:
    def test_malformed_lines_become_failed_outcomes(self):
        items = parse_batch_lines(
            [
                '{"id": "ok", "input": "internet"}',
                "not json",
                '{"id": "bad", "input": "internet", "nope": 1}',
                "",
                "# comment",
            ]
        )
        assert len(items) == 3
        assert isinstance(items[0], Query)
        assert all(isinstance(i, QueryOutcome) for i in items[1:])
        assert all(i.error_kind == "input" for i in items[1:])
        assert "line 2" in items[1].error

    def test_batch_exit_code_is_most_severe(self):
        def fail(kind_exc):
            return QueryOutcome.failure(Query(input="x"), kind_exc)

        from repro.errors import DeviceFault, GraphFormatError, VerificationError

        assert batch_exit_code([]) == 0
        assert batch_exit_code([fail(GraphFormatError("x"))]) == 3
        assert (
            batch_exit_code(
                [fail(GraphFormatError("x")), fail(VerificationError("y"))]
            )
            == 4
        )
        assert (
            batch_exit_code(
                [fail(VerificationError("y")), fail(DeviceFault("z"))]
            )
            == 5
        )

    def test_classify_matches_cli_taxonomy(self):
        from repro.baselines.errors import NotConnectedError
        from repro.errors import (
            GraphFormatError,
            InvariantViolation,
            UnrecoveredFaultError,
            VerificationError,
        )

        assert classify_error(GraphFormatError("x")) == ("input", 3)
        assert classify_error(QueryError("x")) == ("input", 3)
        assert classify_error(VerificationError("x")) == ("verify", 4)
        assert classify_error(InvariantViolation("x")) == ("fault", 5)
        assert classify_error(UnrecoveredFaultError("x")) == ("fault", 5)
        assert classify_error(NotConnectedError("x")) == ("not-connected", 1)
        assert classify_error(RuntimeError("x")) == ("internal", 1)

    def test_sweep_queries_selection(self):
        from repro.generators.suite import INPUT_NAMES, MST_INPUT_NAMES

        assert len(sweep_queries("all", scale=SCALE)) == len(INPUT_NAMES)
        assert len(sweep_queries("mst", scale=SCALE)) == len(MST_INPUT_NAMES)
        two = sweep_queries("internet,2d-2e20.sym", scale=SCALE, repeat=3)
        assert len(two) == 6
        with pytest.raises(QueryError, match="unknown suite input"):
            sweep_queries("internet,atlantis", scale=SCALE)

    def test_outcome_ndjson_roundtrip(self):
        with service() as svc:
            out = svc.run_batch([q(id="r")])[0]
        import json

        d = json.loads(out.to_json_line())
        assert d["schema"] == "repro.service.outcome/v1"
        assert d["cache_hit"] is False
        again = QueryOutcome.from_dict(d)
        assert again.identity() == out.identity()


# ----------------------------------------------------------------------
# Other codes + verify through the service
# ----------------------------------------------------------------------
class TestOtherCodes:
    def test_baseline_code_agrees_with_ecl(self):
        with service() as svc:
            ecl, kru = svc.run_batch(
                [q(id="e"), q(id="k", code="qKruskal")]
            )
        assert ecl.ok and kru.ok
        assert kru.total_weight == ecl.total_weight
        assert kru.algorithm != ecl.algorithm

    def test_unknown_code_is_input_error(self):
        with service() as svc:
            out = svc.run_batch([q(id="u", code="NoSuchCode")])[0]
        assert out.status == "error"
        assert out.error_kind == "input"
        assert out.exit_code == 3

    def test_verify_flag_runs_checker(self):
        out = execute_query(q(id="v", verify=True))
        assert out.ok

    def test_execute_query_standalone(self):
        out = execute_query(q(id="s"))
        assert out.ok
        assert out.load_seconds > 0
        assert out.run_seconds > 0
        assert out.metrics["run.total_weight"] == out.total_weight


@pytest.mark.slow
class TestProcessPool:
    def test_process_pool_end_to_end(self):
        with service(workers=2, pool="process") as svc:
            cold = svc.run_batch([q(id="p1")])[0]
            warm = svc.run_batch([q(id="p2")])[0]
        assert cold.ok and warm.ok
        assert warm.served_by == "result-cache"
        assert warm.identity() == cold.identity()

    def test_process_matches_thread_results(self):
        with service(workers=2, pool="process") as svc:
            p = svc.run_batch([q(id="p")])[0]
        with service() as svc:
            t = svc.run_batch([q(id="t")])[0]
        assert p.mst_digest == t.mst_digest
        assert p.metrics == t.metrics
