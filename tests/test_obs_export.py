"""Exporter tests: Chrome-trace JSON schema and NDJSON span logs."""

import json

from repro.core.eclmst import ecl_mst
from repro.obs import (
    Tracer,
    chrome_trace_events,
    host_hotspots,
    to_chrome_trace_json,
    to_ndjson,
    write_chrome_trace,
    write_ndjson,
)


def _traced(graph):
    tr = Tracer()
    result = ecl_mst(graph, tracer=tr)
    return tr, result


class TestChromeTrace:
    def test_schema(self, medium_graph):
        tr, _ = _traced(medium_graph)
        events = json.loads(to_chrome_trace_json(tr))
        assert isinstance(events, list) and events
        for e in events:
            assert {"name", "ph", "ts", "dur", "pid", "tid", "cat"} <= set(e)
            assert e["ph"] == "X"
            assert isinstance(e["ts"], (int, float)) and e["ts"] >= 0
            assert e["dur"] >= 0
            assert isinstance(e["args"], dict)

    def test_modeled_microsecond_timebase(self, medium_graph):
        tr, result = _traced(medium_graph)
        events = chrome_trace_events(tr)
        kernel_events = [e for e in events if e["cat"] == "kernel"]
        total_us = sum(e["dur"] for e in kernel_events)
        assert abs(total_us - result.counters.total_seconds * 1e6) < 1e-3
        # Kernel events are laid out sequentially on the modeled clock.
        for prev, cur in zip(kernel_events, kernel_events[1:]):
            assert cur["ts"] >= prev["ts"] - 1e-9

    def test_events_carry_span_kinds(self, medium_graph):
        tr, _ = _traced(medium_graph)
        cats = {e["cat"] for e in chrome_trace_events(tr)}
        assert {"run", "phase", "round", "kernel"} <= cats

    def test_args_json_safe(self, medium_graph):
        tr, _ = _traced(medium_graph)
        text = to_chrome_trace_json(tr)
        json.loads(text)  # numpy scalars etc. must have been coerced

    def test_write_file(self, medium_graph, tmp_path):
        tr, _ = _traced(medium_graph)
        path = tmp_path / "trace.json"
        write_chrome_trace(tr, str(path))
        assert isinstance(json.loads(path.read_text()), list)


class TestNdjson:
    def test_one_record_per_span(self, medium_graph):
        tr, _ = _traced(medium_graph)
        lines = to_ndjson(tr).strip().splitlines()
        assert len(lines) == len(tr.spans())
        records = [json.loads(line) for line in lines]
        for rec in records:
            assert {"name", "kind", "id", "parent_id", "depth"} <= set(rec)

    def test_lineage_reconstructible(self, medium_graph):
        tr, _ = _traced(medium_graph)
        records = [json.loads(l) for l in to_ndjson(tr).strip().splitlines()]
        by_id = {r["id"]: r for r in records}
        for rec in records:
            if rec["parent_id"] is None:
                assert rec["depth"] == 0
            else:
                assert by_id[rec["parent_id"]]["depth"] == rec["depth"] - 1

    def test_empty_tracer(self):
        assert to_ndjson(Tracer()) == ""
        assert json.loads(to_chrome_trace_json(Tracer())) == []

    def test_write_file(self, medium_graph, tmp_path):
        tr, _ = _traced(medium_graph)
        path = tmp_path / "spans.ndjson"
        write_ndjson(tr, str(path))
        assert path.read_text().endswith("\n")

    def test_write_empty_tracer_valid_outputs(self, tmp_path):
        """A run that traced nothing still exports well-formed files."""
        empty = Tracer()
        nd = tmp_path / "spans.ndjson"
        ch = tmp_path / "trace.json"
        write_ndjson(empty, str(nd))
        write_chrome_trace(empty, str(ch))
        assert nd.read_text() == ""
        assert json.loads(ch.read_text()) == []


class TestHostHotspots:
    def test_empty_tracer(self):
        assert host_hotspots(Tracer()) == []

    def test_rows_shape_and_order(self, medium_graph):
        tr, _ = _traced(medium_graph)
        rows = host_hotspots(tr)
        assert rows
        for row in rows:
            assert {"name", "kind", "count", "wall_seconds"} <= set(row)
            assert row["wall_seconds"] >= 0.0
        walls = [r["wall_seconds"] for r in rows]
        assert walls == sorted(walls, reverse=True)

    def test_rounds_folded(self, medium_graph):
        """Per-round spans aggregate under one "round *" row instead of
        one row per round."""
        tr, result = _traced(medium_graph)
        rows = {r["name"]: r for r in host_hotspots(tr, top=100)}
        assert "round *" in rows
        assert rows["round *"]["count"] == result.rounds
        assert not any(name.startswith("round 1") for name in rows)

    def test_top_truncates(self, medium_graph):
        tr, _ = _traced(medium_graph)
        assert len(host_hotspots(tr, top=2)) == 2
