"""ECL-MST end-to-end correctness and structural tests."""

import math

import numpy as np
import pytest

from repro.core.config import EclMstConfig, deopt_stages
from repro.core.eclmst import ecl_mst
from repro.core.verify import reference_mst_mask, verify_mst
from repro.generators import suite
from repro.gpusim.spec import TITAN_V

from helpers import make_graph


class TestCorrectnessSmall:
    def test_triangle(self, triangle):
        r = ecl_mst(triangle, verify=True)
        assert r.num_mst_edges == 2
        assert r.total_weight == 3  # edges of weight 1 and 2

    def test_paper_figure_example(self, paper_figure1):
        # Figure 2's run selects edges b(1), e(2), c(3), a(4).
        r = ecl_mst(paper_figure1, verify=True)
        assert r.num_mst_edges == 4
        assert r.total_weight == 1 + 2 + 3 + 4

    def test_msf_two_components(self, two_components):
        r = ecl_mst(two_components, verify=True)
        assert r.num_mst_edges == 4  # 2 per triangle
        assert r.total_weight == 1 + 2 + 4 + 5

    def test_path(self, path_graph):
        r = ecl_mst(path_graph, verify=True)
        assert r.num_mst_edges == 11  # every path edge

    def test_star(self, star_graph):
        r = ecl_mst(star_graph, verify=True)
        assert r.num_mst_edges == 20

    def test_empty_graph(self):
        from repro.graph.build import empty_graph

        r = ecl_mst(empty_graph(5), verify=True)
        assert r.num_mst_edges == 0
        assert r.total_weight == 0

    def test_single_edge(self):
        g = make_graph(2, [(0, 1, 9)])
        r = ecl_mst(g, verify=True)
        assert r.total_weight == 9

    def test_equal_weights_tie_broken_by_id(self):
        # All weights equal: the unique MST under (w, eid) keys is the
        # lowest-ID spanning edges.
        g = make_graph(3, [(0, 1, 5), (1, 2, 5), (0, 2, 5)])
        r = ecl_mst(g, verify=True)
        sel = np.flatnonzero(r.in_mst)
        assert sel.tolist() == [0, 1]  # edge IDs in (lo,hi) lex order


class TestCorrectnessGenerators:
    def test_matches_reference(self, medium_graph):
        r = ecl_mst(medium_graph)
        assert np.array_equal(r.in_mst, reference_mst_mask(medium_graph))

    @pytest.mark.parametrize("name", suite.INPUT_NAMES)
    def test_suite_inputs_verified(self, name):
        g = suite.build(name, scale=0.08)
        ecl_mst(g, verify=True)  # raises on any mismatch


class TestAblationEquivalence:
    """Every de-optimized variant must compute the identical MSF."""

    def test_all_stages_same_result(self, medium_graph):
        ref = reference_mst_mask(medium_graph)
        for name, cfg in deopt_stages():
            r = ecl_mst(medium_graph, cfg)
            assert np.array_equal(r.in_mst, ref), name

    def test_individual_toggles(self, medium_graph):
        ref = reference_mst_mask(medium_graph)
        for flag in (
            "atomic_guards",
            "hybrid_parallelization",
            "filtering",
            "implicit_path_compression",
            "single_direction",
            "tuple_worklist",
            "data_driven",
            "edge_centric",
        ):
            cfg = EclMstConfig().with_(**{flag: False})
            r = ecl_mst(medium_graph, cfg)
            assert np.array_equal(r.in_mst, ref), flag

    def test_filter_c_variants(self, medium_graph):
        ref = reference_mst_mask(medium_graph)
        for c in (2.0, 3.0, 4.0):
            r = ecl_mst(medium_graph, EclMstConfig(filter_c=c))
            assert np.array_equal(r.in_mst, ref), c

    def test_seed_does_not_change_result(self, medium_graph):
        ref = reference_mst_mask(medium_graph)
        for seed in range(5):
            r = ecl_mst(medium_graph, EclMstConfig(seed=seed))
            assert np.array_equal(r.in_mst, ref)


class TestStructure:
    def test_round_bound_logarithmic(self, medium_graph):
        r = ecl_mst(medium_graph)
        bound = 2 * (math.log2(medium_graph.num_vertices) + 4)
        assert r.rounds <= bound

    def test_kernel_names_present(self, medium_graph):
        r = ecl_mst(medium_graph)
        names = {k.name for k in r.counters.kernels}
        assert {"init", "k1_reserve", "host_sync"} <= names

    def test_init_launched_twice_with_filtering(self):
        g = suite.build("coPapersDBLP", scale=0.1)  # dense -> filtered
        r = ecl_mst(g)
        assert r.counters.launches_of("init") == 2
        assert r.extra["filter_plan"].active

    def test_init_launched_once_without_filtering(self):
        g = suite.build("USA-road-d.NY", scale=0.1)  # sparse -> no filter
        r = ecl_mst(g)
        assert r.counters.launches_of("init") == 1

    def test_k1_runs_once_more_than_k2(self):
        # The final k1 produces an empty worklist and no k2/k3 follows.
        g = suite.build("USA-road-d.NY", scale=0.1)
        r = ecl_mst(g)
        assert (
            r.counters.launches_of("k1_reserve")
            == r.counters.launches_of("k2_union") + 1
        )

    def test_memcpy_time_positive(self, medium_graph):
        r = ecl_mst(medium_graph)
        assert r.memcpy_seconds > 0
        assert r.modeled_seconds_with_memcpy > r.modeled_seconds

    def test_throughput_helper(self, medium_graph):
        r = ecl_mst(medium_graph)
        t = r.throughput_meps()
        assert t == pytest.approx(
            medium_graph.num_directed_edges / r.modeled_seconds / 1e6
        )

    def test_edges_helper_consistent(self, medium_graph):
        r = ecl_mst(medium_graph)
        u, v, w = r.edges()
        assert u.size == r.num_mst_edges
        assert int(w.sum()) == r.total_weight

    def test_gpu_spec_affects_time_not_result(self, medium_graph):
        a = ecl_mst(medium_graph)
        b = ecl_mst(medium_graph, gpu=TITAN_V)
        assert np.array_equal(a.in_mst, b.in_mst)
        assert a.modeled_seconds != b.modeled_seconds


class TestOptimizationDirections:
    """The Table-5 deltas: removing optimizations must not speed things
    up (except the documented topology-driven dip)."""

    def test_ladder_monotone_after_full(self):
        g = suite.build("r4-2e23.sym", scale=0.5)
        stages = deopt_stages()
        times = {name: ecl_mst(g, cfg).modeled_seconds for name, cfg in stages}
        full = times["ECL-MST"]
        assert times["No Atomic Guards"] >= full
        assert times["No Filter"] > times["No Atomic Guards"] * 0.99
        assert times["Both Edge Dir."] > times["No Impl. Path Compr."]
        assert times["Vertex-Centric"] > 3 * full

    def test_filtering_helps_dense_input(self):
        g = suite.build("coPapersDBLP", scale=0.4)
        with_f = ecl_mst(g, EclMstConfig()).modeled_seconds
        without = ecl_mst(g, EclMstConfig(filtering=False)).modeled_seconds
        assert with_f < without

    def test_single_direction_halves_init_items(self, medium_graph):
        both = ecl_mst(medium_graph, EclMstConfig(single_direction=False))
        one = ecl_mst(medium_graph, EclMstConfig(single_direction=True))
        k1_both = next(k for k in both.counters.kernels if k.name == "k1_reserve")
        k1_one = next(k for k in one.counters.kernels if k.name == "k1_reserve")
        assert k1_both.items >= 2 * k1_one.items * 0.9


class TestVerify:
    def test_verify_passes(self, medium_graph):
        verify_mst(ecl_mst(medium_graph))

    def test_verify_detects_extra_edge(self, medium_graph):
        from repro.core.verify import VerificationError

        r = ecl_mst(medium_graph)
        off = np.flatnonzero(~r.in_mst)
        if off.size:
            r.in_mst[off[0]] = True
            with pytest.raises(VerificationError):
                verify_mst(r)

    def test_verify_detects_missing_edge(self, medium_graph):
        from repro.core.verify import VerificationError

        r = ecl_mst(medium_graph)
        on = np.flatnonzero(r.in_mst)
        r.in_mst[on[0]] = False
        with pytest.raises(VerificationError):
            verify_mst(r)

    def test_verify_detects_wrong_weight(self, medium_graph):
        from repro.core.verify import VerificationError

        r = ecl_mst(medium_graph)
        r.total_weight += 1
        with pytest.raises(VerificationError):
            verify_mst(r)
