"""Renderer tests for the paper's tables and figures."""

import pytest

from repro.bench.figures import (
    BoxStats,
    ascii_bar_chart,
    filter_accuracy_series,
    render_filter_accuracy_figure,
    render_seed_figure,
    render_throughput_figure,
    seed_sweep,
    throughput_series,
)
from repro.bench.harness import SYSTEM2, run_grid
from repro.bench.tables import (
    format_seconds,
    render_deopt_table,
    render_runtime_table,
    render_table2,
)
from repro.generators import suite


@pytest.fixture(scope="module")
def grid():
    graphs = {
        name: suite.build(name, scale=0.06)
        for name in ("USA-road-d.NY", "rmat16.sym")
    }
    return run_grid(("ECL-MST", "Jucele GPU", "PBBS Ser."), graphs, SYSTEM2)


class TestFormat:
    def test_seconds(self):
        assert format_seconds(0.01234) == "0.0123"
        assert format_seconds(None) == "NC"


class TestTable2:
    def test_contains_all_columns(self):
        graphs = {"internet": suite.build("internet", scale=0.1)}
        out = render_table2(graphs)
        for col in ("Graph Name", "Edges", "Vertices", "CCs", "d-avg", "d-max"):
            assert col in out
        assert "internet" in out


class TestRuntimeTable:
    def test_structure(self, grid):
        out = render_runtime_table(grid, ("ECL-MST", "Jucele GPU", "PBBS Ser."))
        assert "ECL-MST memcpy" in out
        assert "MSF GeoMean" in out and "MST GeoMean" in out
        assert "NC" in out  # Jucele on rmat16
        assert "USA-road-d.NY" in out

    def test_memcpy_column_larger(self, grid):
        cell = grid.cell("ECL-MST", "USA-road-d.NY")
        out = render_runtime_table(grid, ("ECL-MST",))
        row = next(l for l in out.splitlines() if l.startswith("USA-road-d.NY"))
        plain, memcpy = (float(x) for x in row.split()[1:3])
        assert memcpy > plain

    def test_no_memcpy_column_option(self, grid):
        out = render_runtime_table(
            grid, ("ECL-MST",), include_memcpy_column=False
        )
        assert "memcpy" not in out


class TestDeoptTable:
    def test_rendering(self):
        stages = ("A", "B")
        times = {("A", "g1"): 0.1, ("B", "g1"): 0.2, ("A", "g2"): 0.3, ("B", "g2"): 0.4}
        out = render_deopt_table(stages, times, ("g1", "g2"))
        assert "MST GeoMean" in out
        assert "0.1000" in out


class TestFigures:
    def test_throughput_series(self, grid):
        series = throughput_series(grid, ("ECL-MST", "Jucele GPU"))
        assert series["ECL-MST"]["USA-road-d.NY"] > 0
        assert series["Jucele GPU"]["rmat16.sym"] is None

    def test_ascii_chart(self):
        out = ascii_bar_chart({"a": 10.0, "b": 5.0, "c": None})
        lines = out.splitlines()
        assert lines[0].count("#") > lines[1].count("#")
        assert "NC" in lines[2]

    def test_render_throughput_figure(self, grid):
        out = render_throughput_figure(grid, ("ECL-MST",), title="T")
        assert out.startswith("T")
        assert "input,ECL-MST" in out

    def test_box_stats(self):
        s = BoxStats.from_values([1.0, 2.0, 3.0, 4.0, 5.0])
        assert s.minimum == 1 and s.maximum == 5 and s.median == 3
        assert s.q1 == 2 and s.q3 == 4
        assert s.relative_spread == pytest.approx(4 / 3)

    def test_box_stats_empty_rejected(self):
        with pytest.raises(ValueError):
            BoxStats.from_values([])

    def test_seed_sweep(self):
        g = suite.build("coPapersDBLP", scale=0.08)
        stats, median_seed = seed_sweep(g, seeds=7)
        assert 0 <= median_seed < 7
        assert stats.minimum <= stats.median <= stats.maximum

    def test_render_seed_figure(self):
        out = render_seed_figure(
            {"g": BoxStats(1.0, 2.0, 3.0, 4.0, 5.0)}
        )
        assert "relative_spread" in out and "g," in out

    def test_filter_accuracy_only_filtered_inputs(self):
        graphs = {
            "coPapersDBLP": suite.build("coPapersDBLP", scale=0.08),
            "USA-road-d.NY": suite.build("USA-road-d.NY", scale=0.08),
        }
        series = filter_accuracy_series(graphs)
        assert "coPapersDBLP" in series
        assert "USA-road-d.NY" not in series  # d-avg < 4, no filtering

    def test_render_filter_accuracy(self):
        out = render_filter_accuracy_figure({"g": 0.25, "h": -0.4})
        assert "+25.0%" in out and "-40.0%" in out
