"""Partitioners for the multi-device sharded engine.

Covers the degenerate shapes the partitioner must survive without
special-casing by the caller: empty graphs, a single vertex, more
shards than vertices, zero-edge shards, and disconnected components
split across shards — plus the load/cut statistics the metrics layer
reports.
"""

import numpy as np
import pytest

from repro.graph.build import empty_graph
from repro.shard import (
    PARTITION_STRATEGIES,
    extract_shards,
    partition_graph,
)

from helpers import make_graph

STRATEGIES = list(PARTITION_STRATEGIES)


def _path_graph(n, name="path"):
    return make_graph(n, [(i, i + 1, 10 + i) for i in range(n - 1)], name=name)


class TestPartitionAssignment:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_every_vertex_assigned_exactly_once(self, strategy):
        g = _path_graph(40)
        part = partition_graph(g, 4, strategy)
        assert part.assignment.shape == (40,)
        assert part.assignment.min() >= 0
        assert part.assignment.max() < 4
        assert part.n_shards == 4
        assert part.strategy == strategy

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_loads_count_degrees(self, strategy):
        g = _path_graph(12)
        part = partition_graph(g, 3, strategy)
        assert len(part.loads) == 3
        # Each undirected edge contributes one degree at each endpoint.
        assert sum(part.loads) == 2 * g.num_edges

    def test_contiguous_assignment_is_monotone(self):
        g = _path_graph(30)
        part = partition_graph(g, 4, "contiguous")
        assert np.all(np.diff(part.assignment) >= 0)

    def test_unknown_strategy_rejected(self):
        g = _path_graph(4)
        with pytest.raises(ValueError):
            partition_graph(g, 2, "metis")

    def test_bad_shard_count_rejected(self):
        g = _path_graph(4)
        with pytest.raises(ValueError):
            partition_graph(g, 0, "contiguous")


class TestDegenerateShapes:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_empty_graph(self, strategy):
        g = empty_graph(0)
        part = partition_graph(g, 2, strategy)
        assert part.assignment.size == 0
        assert part.cut_edges == 0
        assert part.imbalance == 1.0
        shards = extract_shards(g, part)
        assert all(sg.graph.num_vertices == 0 for sg in shards)
        assert all(sg.graph.num_edges == 0 for sg in shards)

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_single_vertex(self, strategy):
        g = empty_graph(1)
        part = partition_graph(g, 2, strategy)
        shards = extract_shards(g, part)
        assert sum(sg.graph.num_vertices for sg in shards) == 1
        assert all(sg.graph.num_edges == 0 for sg in shards)

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_more_shards_than_vertices(self, strategy):
        g = _path_graph(3)
        part = partition_graph(g, 8, strategy)
        assert part.n_shards == 8
        shards = extract_shards(g, part)
        # Every shard slot exists (some with zero vertices); the
        # vertices that exist are all covered exactly once.
        assert len(shards) == 8
        total = sum(sg.graph.num_vertices for sg in shards)
        assert total == 3

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_zero_edge_shard(self, strategy):
        # Isolated vertices produce shards with vertices but no
        # internal edges; extraction must keep them solvable.
        g = make_graph(6, [(0, 1, 5)], name="sparse")
        part = partition_graph(g, 3, strategy)
        shards = extract_shards(g, part)
        assert sum(sg.graph.num_vertices for sg in shards) == 6
        assert sum(sg.graph.num_edges for sg in shards) <= 1

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_disconnected_components_split_across_shards(self, strategy):
        # Two triangles with no edge between them: the cut may or may
        # not be empty depending on where the partition falls, but
        # internal + cut edges always account for every edge.
        edges = [(0, 1, 1), (1, 2, 2), (0, 2, 3),
                 (3, 4, 1), (4, 5, 2), (3, 5, 3)]
        g = make_graph(6, edges, name="two-triangles")
        part = partition_graph(g, 2, strategy)
        shards = extract_shards(g, part)
        internal = sum(sg.graph.num_edges for sg in shards)
        assert internal + part.cut_edges == g.num_edges


class TestShardGraphMapping:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_eid_map_round_trips_weights(self, strategy):
        g = _path_graph(20)
        part = partition_graph(g, 3, strategy)
        gu, gv, gw, geid = g.undirected_edges()
        by_eid = {int(e): (int(a), int(b), int(c))
                  for a, b, c, e in zip(gu, gv, gw, geid)}
        for sg in extract_shards(g, part):
            lu, lv, lw, leid = sg.graph.undirected_edges()
            for a, b, c, e in zip(lu, lv, lw, leid):
                # Each local edge maps back onto the global edge with
                # the same endpoints (translated) and weight.
                ga, gb, gc = by_eid[int(sg.eid_map[int(e)])]
                assert {int(sg.vertices[a]), int(sg.vertices[b])} == {ga, gb}
                assert int(c) == gc

    def test_imbalance_statistic(self):
        # A star graph partitioned contiguously puts nearly all degree
        # on the hub's shard: imbalance must be well above 1.
        g = make_graph(9, [(0, i, i) for i in range(1, 9)], name="star")
        part = partition_graph(g, 4, "contiguous")
        assert part.imbalance >= 1.0
        assert max(part.loads) == round(part.imbalance * (sum(part.loads) / 4))
