"""Integration tests: every shipped example must run to completion.

The examples double as end-to-end integration tests of the public API
(the assertions inside them are real checks, e.g. all-codes-agree and
clustering purity).
"""

import runpy
import sys
from pathlib import Path

import pytest

# Full example scripts are end-to-end runs — the heaviest tests in the
# suite, split out of the fast CI matrix.
pytestmark = pytest.mark.slow

EXAMPLES = sorted(
    p.name for p in (Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, capsys, monkeypatch):
    path = Path(__file__).parent.parent / "examples" / name
    monkeypatch.setattr(sys, "argv", [str(path)])
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{name} produced no output"


def test_example_inventory():
    """The README promises at least these five examples."""
    assert {
        "quickstart.py",
        "power_grid.py",
        "road_benchmark.py",
        "clustering.py",
        "optimization_study.py",
    } <= set(EXAMPLES)
