"""Sampling-based filtering tests (Section 3.2 / 5.4 behaviour)."""

import numpy as np
import pytest

from repro.core.config import EclMstConfig
from repro.core.filtering import plan_filtering, threshold_accuracy
from repro.generators import grid2d, preferential_attachment, road_network


class TestActivation:
    def test_no_filter_below_average_degree_4(self):
        # Road maps (d-avg < 4): "no filtering occurs for graphs with
        # an average degree below 4".
        g = road_network(500, target_avg_degree=2.5, seed=0)
        plan = plan_filtering(g, EclMstConfig())
        assert not plan.active

    def test_grid_boundary(self):
        # 2d grids have d-avg just under 4 (border vertices).
        g = grid2d(20, seed=0)
        plan = plan_filtering(g, EclMstConfig())
        assert not plan.active

    def test_filter_active_on_dense(self):
        g = preferential_attachment(500, 8, seed=0)
        plan = plan_filtering(g, EclMstConfig())
        assert plan.active
        assert plan.threshold > 0
        assert len(plan.samples) == 20

    def test_disabled_by_config(self):
        g = preferential_attachment(500, 8, seed=0)
        plan = plan_filtering(g, EclMstConfig(filtering=False))
        assert not plan.active

    def test_empty_graph(self):
        from repro.graph.build import empty_graph

        plan = plan_filtering(empty_graph(10), EclMstConfig())
        assert not plan.active


class TestThresholdQuality:
    def test_threshold_is_a_sampled_weight(self):
        g = preferential_attachment(500, 8, seed=1)
        plan = plan_filtering(g, EclMstConfig(seed=3))
        assert plan.threshold in plan.samples

    def test_deterministic_per_seed(self):
        g = preferential_attachment(500, 8, seed=1)
        a = plan_filtering(g, EclMstConfig(seed=5))
        b = plan_filtering(g, EclMstConfig(seed=5))
        assert a.threshold == b.threshold

    def test_seeds_vary_threshold(self):
        g = preferential_attachment(2000, 8, seed=1)
        thresholds = {
            plan_filtering(g, EclMstConfig(seed=s)).threshold for s in range(25)
        }
        assert len(thresholds) > 3

    def test_threshold_tracks_target_quantile(self):
        # With many samples the estimate should be near the true
        # c|V|-lightest bound.
        g = preferential_attachment(3000, 10, seed=2)
        cfg = EclMstConfig(filter_samples=4000, seed=0)
        plan = plan_filtering(g, cfg)
        w = np.sort(g.weights.astype(np.int64))
        true_bound = w[min(w.size - 1, int(cfg.filter_c * g.num_vertices))]
        assert 0.7 * true_bound < plan.threshold < 1.4 * true_bound


class TestAccuracyMetric:
    def test_none_when_inactive(self):
        g = road_network(300, seed=0)
        plan = plan_filtering(g, EclMstConfig())
        assert threshold_accuracy(g, plan) is None

    def test_zero_means_exact(self):
        # Construct a plan whose threshold admits exactly 3|V| slots.
        g = preferential_attachment(400, 8, seed=3)
        w = np.sort(g.weights.astype(np.int64))
        target_slots = 3 * g.num_vertices
        from repro.core.filtering import FilterPlan

        plan = FilterPlan(threshold=int(w[target_slots]))
        acc = threshold_accuracy(g, plan, target_factor=3.0)
        assert abs(acc) < 0.05

    def test_paper_style_spread(self):
        # "the random selection rarely chooses an edge weight that
        # yields more than double or less than half" the target.
        g = preferential_attachment(4000, 10, seed=4)
        cfg = EclMstConfig()
        within = 0
        for seed in range(30):
            plan = plan_filtering(g, cfg.with_(seed=seed))
            acc = threshold_accuracy(g, plan, target_factor=4.0)
            if -0.5 <= acc <= 1.0:
                within += 1
        assert within >= 24  # ~80%+ inside the half/double band
