"""Resilience subsystem: fault injection, invariants, recovery, chaos."""

import numpy as np
import pytest

from repro.core.eclmst import ecl_mst
from repro.core.verify import reference_mst_mask
from repro.errors import (
    EXIT_INPUT_ERROR,
    EXIT_UNRECOVERED_FAULT,
    DeviceFault,
    GraphFormatError,
    InvariantViolation,
    ReproError,
    UnrecoveredFaultError,
    VerificationError,
)
from repro.generators.random_graphs import erdos_renyi
from repro.resilience import (
    FAULT_KINDS,
    Checkpoint,
    FaultEvent,
    FaultPlan,
    InvariantChecker,
    ResilienceConfig,
    run_campaign,
)

from helpers import make_graph


@pytest.fixture(scope="module")
def graph():
    return erdos_renyi(600, 3000, seed=11)


# ---------------------------------------------------------------------------
# Fault plans
# ---------------------------------------------------------------------------
class TestFaultPlan:
    def test_generate_is_deterministic(self):
        a = FaultPlan.generate(seed=5, n_faults=10, launches=40, atomic_calls=20)
        b = FaultPlan.generate(seed=5, n_faults=10, launches=40, atomic_calls=20)
        assert a.events == b.events

    def test_generate_covers_all_kinds(self):
        plan = FaultPlan.generate(
            seed=1, n_faults=len(FAULT_KINDS), launches=40, atomic_calls=20
        )
        assert {e.kind for e in plan.events} == set(FAULT_KINDS)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent(kind="cosmic-ray", index=0)

    def test_kernel_fail_raises_typed_fault(self, graph):
        plan = FaultPlan(
            seed=0, events=(FaultEvent(kind="kernel-fail", index=0),)
        )
        cfg = ResilienceConfig(serial_fallback=False, max_retries=0)
        with pytest.raises((DeviceFault, UnrecoveredFaultError)):
            ecl_mst(graph, resilience=cfg, fault_plan=plan)

    def test_summary_reports_injections(self, graph):
        plan = FaultPlan(
            seed=0, events=(FaultEvent(kind="bitflip-parent", index=3, bit=7),)
        )
        r = ecl_mst(graph, resilience=ResilienceConfig(), fault_plan=plan)
        fi = r.extra["fault_injection"]
        assert fi["planned"] == 1 and fi["injected"] == 1
        assert fi["by_kind"] == {"bitflip-parent": 1}


# ---------------------------------------------------------------------------
# Zero overhead / bit-identity
# ---------------------------------------------------------------------------
class TestZeroOverhead:
    def test_checks_off_is_bit_identical(self, graph):
        plain = ecl_mst(graph)
        off = ResilienceConfig(
            check_cadence=0, check_kernels=False, verify_result=False
        )
        guarded = ecl_mst(graph, resilience=off)
        assert np.array_equal(plain.in_mst, guarded.in_mst)
        assert plain.modeled_seconds == guarded.modeled_seconds
        assert plain.counters.num_launches == guarded.counters.num_launches
        assert guarded.extra["resilience"]["checks_run"] == 0

    def test_checks_on_fault_free_same_result_and_counters(self, graph):
        plain = ecl_mst(graph)
        guarded = ecl_mst(graph, resilience=ResilienceConfig())
        assert np.array_equal(plain.in_mst, guarded.in_mst)
        # Invariant sweeps are host-side: modeled time is untouched.
        assert plain.modeled_seconds == guarded.modeled_seconds
        res = guarded.extra["resilience"]
        assert res["checks_run"] > 0 and res["detected"] == 0

    def test_resilience_metrics_surface(self, graph):
        from repro.obs.metrics import collect_result_metrics

        r = ecl_mst(graph, resilience=ResilienceConfig())
        m = collect_result_metrics(r)
        assert m["resilience.checks_run"] > 0
        assert m["resilience.detected"] == 0
        plain = collect_result_metrics(ecl_mst(graph))
        assert "resilience.checks_run" not in plain


# ---------------------------------------------------------------------------
# Invariant checker
# ---------------------------------------------------------------------------
class TestInvariants:
    def _state(self, graph):
        from repro.core.config import EclMstConfig
        from repro.core.eclmst import _edge_weight_table
        from repro.core.kernels import MstState, kernel_init_populate
        from repro.gpusim.costmodel import Device
        from repro.gpusim.spec import RTX_3080_TI

        state = MstState.create(graph, EclMstConfig(), Device(RTX_3080_TI))
        kernel_init_populate(state, None, phase=0)
        return state, _edge_weight_table(graph)

    def test_clean_state_passes(self, graph):
        state, wt = self._state(graph)
        chk = InvariantChecker()
        chk.bind(state, wt)
        chk.check_round(round_index=0)  # must not raise

    def test_parent_out_of_range_detected(self, graph):
        state, wt = self._state(graph)
        chk = InvariantChecker()
        chk.bind(state, wt)
        state.parent[3] = graph.num_vertices + 99
        with pytest.raises(InvariantViolation) as ei:
            chk.check_round(round_index=1)
        assert ei.value.invariant == "parent-range"
        assert ei.value.round_index == 1

    def test_parent_cycle_detected(self, graph):
        state, wt = self._state(graph)
        chk = InvariantChecker()
        chk.bind(state, wt)
        state.parent[0], state.parent[1] = 1, 0
        with pytest.raises(InvariantViolation) as ei:
            chk.check_round(round_index=2)
        assert ei.value.invariant == "parent-acyclic"

    def test_worklist_weight_mismatch_detected(self, graph):
        state, wt = self._state(graph)
        chk = InvariantChecker()
        chk.bind(state, wt)
        state.wl.front.w[0] += 1
        with pytest.raises(InvariantViolation) as ei:
            chk.check_round(round_index=0)
        assert ei.value.invariant == "worklist-live"


# ---------------------------------------------------------------------------
# Checkpoint
# ---------------------------------------------------------------------------
class TestCheckpoint:
    def test_capture_restore_roundtrip(self, graph):
        from repro.core.config import EclMstConfig
        from repro.core.kernels import (
            MstState,
            kernel1_reserve,
            kernel_init_populate,
        )
        from repro.gpusim.costmodel import Device
        from repro.gpusim.spec import RTX_3080_TI

        state = MstState.create(graph, EclMstConfig(), Device(RTX_3080_TI))
        kernel_init_populate(state, None, phase=0)
        cp = Checkpoint.capture(state)
        before_parent = state.parent.copy()
        before_front = len(state.wl.front)

        kernel1_reserve(state)  # mutates min_edge and the worklist
        state.parent[:] = 0
        state.in_mst[:] = True

        cp.restore(state)
        assert np.array_equal(state.parent, before_parent)
        assert not state.in_mst.any()
        assert len(state.wl.front) == before_front
        assert (state.min_edge == state.min_edge.max()).all()
        assert cp.nbytes > 0


# ---------------------------------------------------------------------------
# Recovery ladder
# ---------------------------------------------------------------------------
class TestRecovery:
    def test_bitflip_recovered_with_correct_result(self, graph):
        ref = reference_mst_mask(graph)
        plan = FaultPlan(
            seed=0,
            events=(FaultEvent(kind="bitflip-parent", index=4, lane=17, bit=5),),
        )
        r = ecl_mst(graph, resilience=ResilienceConfig(), fault_plan=plan)
        assert np.array_equal(r.in_mst, ref)
        res = r.extra["resilience"]
        assert res["detected"] >= 1

    def test_fallback_disabled_raises_unrecovered(self, graph):
        # Every launch fails -> retries and the phase restart both fail.
        events = tuple(
            FaultEvent(kind="kernel-fail", index=i) for i in range(400)
        )
        plan = FaultPlan(seed=0, events=events)
        cfg = ResilienceConfig(serial_fallback=False, backoff_base_s=0.0)
        with pytest.raises(UnrecoveredFaultError):
            ecl_mst(graph, resilience=cfg, fault_plan=plan)

    def test_ladder_exhaustion_falls_back_to_serial(self, graph):
        events = tuple(
            FaultEvent(kind="kernel-fail", index=i) for i in range(400)
        )
        plan = FaultPlan(seed=0, events=events)
        cfg = ResilienceConfig(backoff_base_s=0.0)
        r = ecl_mst(graph, resilience=cfg, fault_plan=plan)
        assert r.algorithm == "ecl-mst+serial-fallback"
        assert np.array_equal(r.in_mst, reference_mst_mask(graph))
        res = r.extra["resilience"]
        assert res["fallbacks"] == 1 and res["phase_restarts"] >= 1

    def test_backoff_accounted(self, graph):
        plan = FaultPlan(
            seed=0, events=(FaultEvent(kind="kernel-fail", index=2),)
        )
        cfg = ResilienceConfig(backoff_base_s=1e-6, backoff_max_s=1e-5)
        r = ecl_mst(graph, resilience=cfg, fault_plan=plan)
        res = r.extra["resilience"]
        assert res["retries"] >= 1
        assert 0 < res["backoff_seconds"] <= 1e-5 * res["retries"]


# ---------------------------------------------------------------------------
# Chaos campaign
# ---------------------------------------------------------------------------
class TestCampaign:
    def test_campaign_no_escapes(self, graph):
        rep = run_campaign(graph, n_faults=18, seed=2)
        assert rep.injected >= 18
        assert rep.escaped == 0
        assert {k for t in rep.trials for k in t.kinds} == set(FAULT_KINDS)
        assert "PASS" in rep.render()

    def test_campaign_report_shape(self, graph):
        rep = run_campaign(
            graph, n_faults=6, seed=4, kinds=("bitflip-parent", "kernel-fail")
        )
        d = rep.to_dict()
        assert d["injected"] == rep.injected
        assert set(d["by_kind"]) <= {"bitflip-parent", "kernel-fail"}
        assert d["escaped"] == 0

    def test_campaign_detects_without_invariants(self, graph):
        # Even with sweeps off, the end-of-run verify detector must
        # keep corruption from escaping.
        rep = run_campaign(
            graph,
            n_faults=8,
            seed=6,
            kinds=("bitflip-minedge",),
            resilience=ResilienceConfig(check_cadence=0),
        )
        assert rep.escaped == 0


# ---------------------------------------------------------------------------
# Error taxonomy + CLI
# ---------------------------------------------------------------------------
class TestErrorTaxonomy:
    def test_hierarchy(self):
        assert issubclass(GraphFormatError, ReproError)
        assert issubclass(GraphFormatError, ValueError)
        assert issubclass(VerificationError, AssertionError)
        assert issubclass(DeviceFault, RuntimeError)
        assert issubclass(InvariantViolation, ReproError)
        assert issubclass(UnrecoveredFaultError, ReproError)

    def test_backcompat_reexports(self):
        from repro.baselines.errors import NotConnectedError as a
        from repro.errors import NotConnectedError as b

        assert a is b

    def test_cli_input_error_exit_code(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.ecl"
        bad.write_bytes(b"definitely not an ECL graph")
        assert main(["mst", str(bad)]) == EXIT_INPUT_ERROR
        assert "input error" in capsys.readouterr().err

    def test_cli_negative_weight_names_line(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.txt"
        bad.write_text("0 1 4\n1 2 -9\n")
        assert main(["mst", str(bad)]) == EXIT_INPUT_ERROR
        assert ":2:" in capsys.readouterr().err

    def test_cli_chaos_passes(self, tmp_path, capsys):
        from repro.cli import main
        from repro.graph.io import save_ecl

        g = erdos_renyi(200, 800, seed=3)
        path = tmp_path / "g.ecl"
        save_ecl(g, path)
        assert main(["chaos", str(path), "--faults", "6", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out and "ESCAPED" in out

    def test_cli_chaos_unknown_kind(self, capsys):
        from repro.cli import main

        assert main(["chaos", "internet", "--kinds", "gremlins"]) == 2

    def test_exit_code_constants_distinct(self):
        codes = {EXIT_INPUT_ERROR, EXIT_UNRECOVERED_FAULT, 2, 1, 0}
        assert len(codes) == 5


# ---------------------------------------------------------------------------
# Telemetry join: the NDJSON event log and the span trace correlate
# ---------------------------------------------------------------------------
class TestTelemetryJoin:
    def test_resilience_events_join_trace_spans(self, graph):
        from repro.obs.events import ListSink, configure_events, reset_events
        from repro.obs.trace import Tracer

        sink = ListSink()
        configure_events(level="debug", extra_sinks=[sink], console=False)
        tracer = Tracer()
        plan = FaultPlan(
            seed=0,
            events=(
                FaultEvent(kind="bitflip-parent", index=4, lane=17, bit=5),
            ),
        )
        try:
            r = ecl_mst(
                graph,
                resilience=ResilienceConfig(),
                fault_plan=plan,
                tracer=tracer,
            )
        finally:
            reset_events()
        assert r.extra["resilience"]["detected"] >= 1

        names = [e.name for e in sink.events]
        assert "fault.injected" in names
        assert "recovery.detected" in names

        # Every event that claims a span must join to a real span ID in
        # the trace (span=0 means "no span active", never a dangle).
        span_ids = {sp.id for sp in tracer.spans()}
        correlated = [
            e for e in sink.events if e.fields.get("span", 0) > 0
        ]
        assert correlated, "no events carried a span correlation ID"
        for ev in correlated:
            assert ev.fields["span"] in span_ids, (
                f"{ev.name} points at unknown span {ev.fields['span']}"
            )

        # One run ID binds the whole story.
        runs = {
            e.fields["run"] for e in sink.events if "run" in e.fields
        }
        assert len(runs) == 1
        assert next(iter(runs)).startswith("run-")

    def test_event_log_does_not_perturb_recovery(self, graph):
        from repro.obs.events import ListSink, configure_events, reset_events

        plan = FaultPlan(
            seed=0,
            events=(
                FaultEvent(kind="bitflip-parent", index=4, lane=17, bit=5),
            ),
        )
        plain = ecl_mst(graph, resilience=ResilienceConfig(), fault_plan=plan)
        configure_events(
            level="debug", extra_sinks=[ListSink()], console=False
        )
        try:
            logged = ecl_mst(
                graph, resilience=ResilienceConfig(), fault_plan=plan
            )
        finally:
            reset_events()
        assert logged.total_weight == plain.total_weight
        assert np.array_equal(logged.in_mst, plain.in_mst)
        assert (
            logged.extra["resilience"]["detected"]
            == plain.extra["resilience"]["detected"]
        )
