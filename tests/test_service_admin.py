"""Admin endpoints: /healthz, /statusz, /metrics, /profilez, /debugz.

Runs a real :class:`AdminServer` on an OS-assigned port against a live
service and validates each body — including that ``/metrics`` is
well-formed Prometheus text exposition (parsed by a small in-test
parser, not just grepped).
"""

from __future__ import annotations

import json
import re
import urllib.error
import urllib.request

import pytest

from repro.obs.metrics import metric_direction
from repro.service import MSTService, Query, ServiceConfig
from repro.service.admin import (
    AdminServer,
    render_prometheus,
    sanitize_metric_name,
)

SCALE = 0.06


def q(input="internet", **kw):
    kw.setdefault("scale", SCALE)
    return Query(input=input, **kw)


def service(**kw):
    kw.setdefault("workers", 2)
    return MSTService(ServiceConfig(**kw))


def get(url: str):
    """GET returning (status, headers, body) without raising on 4xx."""
    try:
        with urllib.request.urlopen(url, timeout=10) as resp:
            return resp.status, dict(resp.headers), resp.read().decode()
    except urllib.error.HTTPError as err:
        return err.code, dict(err.headers), err.read().decode()


# ----------------------------------------------------------------------
# Prometheus text exposition (format 0.0.4)
# ----------------------------------------------------------------------
_SAMPLE_RE = re.compile(
    r"(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?"
    r" (?P<value>\S+)"
)


def parse_prometheus(text: str):
    """Strict-enough parser: returns ({family: type}, {sample: value}).

    Raises AssertionError on any malformed line, unknown escape, or
    sample whose family never got a ``# TYPE`` line.
    """
    families: dict[str, str] = {}
    samples: dict[str, float] = {}
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# HELP "):
            assert len(line.split(" ", 3)) == 4, f"bad HELP: {line!r}"
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ", 3)
            assert kind in ("counter", "gauge", "histogram", "summary", "untyped")
            families[name] = kind
            continue
        assert not line.startswith("#"), f"unknown comment: {line!r}"
        m = _SAMPLE_RE.fullmatch(line)
        assert m, f"malformed sample line: {line!r}"
        raw = m.group("value")
        value = float(
            {"+Inf": "inf", "-Inf": "-inf", "NaN": "nan"}.get(raw, raw)
        )
        samples[m.group("name") + (m.group("labels") or "")] = value
        assert m.group("name") in families, f"sample without TYPE: {line!r}"
    return families, samples


class TestSanitize:
    def test_dots_become_underscores(self):
        assert (
            sanitize_metric_name("service.p50_latency")
            == "repro_service_p50_latency"
        )

    def test_illegal_chars_flattened(self):
        assert sanitize_metric_name("a-b c/d") == "repro_a_b_c_d"

    def test_leading_digit_guarded(self):
        assert sanitize_metric_name("2d.grid", prefix="") == "_2d_grid"

    def test_colon_survives(self):
        assert sanitize_metric_name("ns:total", prefix="") == "ns:total"


class TestRenderPrometheus:
    def test_exposition_is_parseable_and_typed(self):
        with service() as svc:
            svc.run_batch([q(id="a")])
            text = render_prometheus(svc)
        families, samples = parse_prometheus(text)
        assert text.endswith("\n")
        # Counters and gauges carry the right TYPE.
        assert families["repro_service_queries"] == "counter"
        assert families["repro_service_executed"] == "counter"
        assert families["repro_service_qps"] == "gauge"
        assert families["repro_service_p50_latency"] == "gauge"
        assert samples["repro_service_queries"] == 1.0

    def test_slo_gauges_carry_labels(self):
        with service() as svc:
            svc.run_batch([q(id="a")])
            text = render_prometheus(svc)
        _, samples = parse_prometheus(text)
        assert 'repro_slo_sli{slo="availability"}' in samples
        assert 'repro_slo_burn_rate{slo="latency-1s"}' in samples
        assert samples['repro_slo_alerting{slo="escaped-faults"}'] == 0.0

    def test_inf_renders_as_prometheus_inf(self):
        # A zero-kind SLO with an escape burns at +Inf; the exposition
        # must still parse.
        with service() as svc:
            svc.slo.record(ok=True, latency_s=0.1, escaped=1)
            text = render_prometheus(svc)
        _, samples = parse_prometheus(text)
        key = 'repro_slo_burn_rate{slo="escaped-faults"}'
        assert samples[key] == float("inf")
        assert 'burn_rate{slo="escaped-faults"} +Inf' in text


# ----------------------------------------------------------------------
# The windowed-metrics satellite: p50/p95/qps come from recent traffic
# ----------------------------------------------------------------------
class TestWindowedServiceMetrics:
    def test_latency_gauges_read_the_sliding_window(self):
        with service() as svc:
            for v in (0.010, 0.020, 0.030, 0.040):
                svc._lat_window.observe(v)
                svc._done_window.inc()
            flat = svc.metrics()
        assert flat["service.p50_latency"] == svc._lat_window.quantile(0.5)
        assert flat["service.p95_latency"] == svc._lat_window.quantile(0.95)
        assert flat["service.qps"] == pytest.approx(
            4.0 / svc.config.window_s
        )

    def test_idle_service_reports_zero_not_nan(self):
        with service() as svc:
            flat = svc.metrics()
        assert flat["service.p50_latency"] == 0.0
        assert flat["service.p95_latency"] == 0.0
        assert flat["service.qps"] == 0.0

    def test_lifetime_histogram_excluded_from_flat_metrics(self):
        with service() as svc:
            svc.run_batch([q(id="a")])
            flat = svc.metrics()
        assert not any(k.startswith("service.latency.") for k in flat)

    def test_latency_metrics_classified_as_info(self):
        for name in (
            "service.p50_latency",
            "service.p95_latency",
            "service.qps",
            "service.latency.count",
            "service.latency.p50",
        ):
            assert metric_direction(name) == "info", name
        # The gate still treats real costs as gating.
        assert metric_direction("run.modeled_total_s") == "lower"


# ----------------------------------------------------------------------
# The HTTP server
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def live():
    """One service + admin server shared by the endpoint tests."""
    with MSTService(ServiceConfig(workers=2, keep_profile=True)) as svc:
        svc.run_batch([q(id="seed")])
        with AdminServer(svc) as admin:
            yield svc, admin


class TestEndpoints:
    def test_os_assigned_port(self, live):
        _, admin = live
        assert admin.port > 0
        assert admin.url.endswith(str(admin.port))

    def test_healthz(self, live):
        _, admin = live
        status, _, body = get(admin.url + "/healthz")
        assert status == 200 and body == "ok\n"
        assert get(admin.url + "/")[0] == 200

    def test_statusz_snapshot(self, live):
        _, admin = live
        status, headers, body = get(admin.url + "/statusz")
        assert status == 200
        assert headers["Content-Type"].startswith("application/json")
        doc = json.loads(body)
        assert set(doc) >= {
            "version",
            "uptime_s",
            "config",
            "queue_depth",
            "caches",
            "window",
            "slos",
        }
        assert doc["caches"]["results"] >= 1
        assert doc["window"]["completed"] >= 1
        assert {s["name"] for s in doc["slos"]} == {
            "availability",
            "latency-1s",
            "escaped-faults",
            "shed-rate",
        }
        assert doc["policy"] == {"enabled": False}

    def test_metrics_endpoint(self, live):
        _, admin = live
        status, headers, body = get(admin.url + "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith(
            "text/plain; version=0.0.4"
        )
        families, samples = parse_prometheus(body)
        assert samples["repro_service_queries"] >= 1.0
        assert families["repro_service_cache_hit_ratio"] == "gauge"

    def test_profilez_after_execution(self, live):
        _, admin = live
        status, _, body = get(admin.url + "/profilez")
        assert status == 200
        doc = json.loads(body)
        assert doc["algorithm"] == "ecl-mst"
        assert "kernels" in doc and "round_log" in doc

    def test_unknown_path_404_lists_endpoints(self, live):
        _, admin = live
        status, _, body = get(admin.url + "/nope")
        assert status == 404
        endpoints = json.loads(body)["endpoints"]
        assert "/metrics" in endpoints
        assert "/debugz" in endpoints

    def test_debugz_ring_tails(self, live):
        _, admin = live
        status, headers, body = get(admin.url + "/debugz")
        assert status == 200
        assert headers["Content-Type"].startswith("application/json")
        doc = json.loads(body)
        assert doc["enabled"] is True
        assert set(doc["rings"]) == {
            "events",
            "outcomes",
            "spans",
            "snapshots",
        }
        # The seed query left tracks in every observation ring.
        assert doc["rings"]["outcomes"]["len"] >= 1
        assert any(o["id"] == "seed" for o in doc["outcomes"])
        assert any(s["query"] == "seed" for s in doc["spans"])
        assert isinstance(doc["bundles"], list)


class TestProfilezGating:
    def test_404_until_profile_kept(self):
        with service() as svc:  # keep_profile defaults off
            svc.run_batch([q(id="a")])
            with AdminServer(svc) as admin:
                status, _, body = get(admin.url + "/profilez")
        assert status == 404
        assert "keep_profile" in json.loads(body)["hint"]


class TestDebugzGating:
    def test_404_when_recorder_disabled(self):
        with service(recorder=None) as svc:
            with AdminServer(svc) as admin:
                status, _, body = get(admin.url + "/debugz")
        assert status == 404
        assert "recorder" in json.loads(body)["hint"]


# ----------------------------------------------------------------------
# Concurrency: admin reads racing live queries must never tear
# ----------------------------------------------------------------------
class TestConcurrentReads:
    def test_profilez_and_debugz_under_concurrent_queries(self, tmp_path):
        import threading

        from repro.obs.recorder import RecorderConfig

        cfg = ServiceConfig(
            workers=4,
            keep_profile=True,
            recorder=RecorderConfig(
                dir=str(tmp_path / "pm"), snapshot_interval_s=0.0
            ),
        )
        failures: list[str] = []
        stop = threading.Event()

        def scrape(path: str):
            while not stop.is_set():
                status, _, body = get(admin.url + path)
                if status != 200:
                    failures.append(f"{path}: HTTP {status}")
                    return
                try:
                    # Torn reads would break parsing.
                    if path == "/metrics":
                        parse_prometheus(body)
                    else:
                        json.loads(body)
                except (AssertionError, json.JSONDecodeError) as exc:
                    failures.append(f"{path}: {exc}")
                    return

        with MSTService(cfg) as svc:
            svc.run_batch([q(id="warm")])  # /profilez has a body
            with AdminServer(svc) as admin:
                threads = [
                    threading.Thread(target=scrape, args=(p,), daemon=True)
                    for p in ("/profilez", "/debugz", "/statusz", "/metrics")
                ]
                for t in threads:
                    t.start()
                # Mixed traffic, including failures that trigger bundle
                # captures, racing the scrapers the whole time.
                batch = []
                for i in range(6):
                    batch.append(q(id=f"ok-{i}", input="2d-2e20.sym"))
                    batch.append(
                        q(
                            id=f"bad-{i}",
                            n_faults=1,
                            check_cadence=0,
                            fault_kinds=("kernel-fail",),
                            fault_seed=i,
                        )
                    )
                svc.run_batch(batch)
                stop.set()
                for t in threads:
                    t.join(timeout=10.0)
        assert not failures, failures
