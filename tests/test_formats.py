"""DIMACS and METIS format tests."""

import io

import numpy as np
import pytest

from repro.graph.formats import load_dimacs, load_metis, save_dimacs, save_metis


class TestDimacs:
    def test_parse_basic(self):
        text = io.StringIO(
            "c a road graph\n"
            "p sp 3 4\n"
            "a 1 2 10\n"
            "a 2 1 10\n"
            "a 2 3 20\n"
            "a 3 2 20\n"
        )
        g = load_dimacs(text)
        assert g.num_vertices == 3
        assert g.num_edges == 2  # both directions merged
        assert sorted(g.weights.tolist()) == [10, 10, 20, 20]

    def test_one_direction_input_symmetrized(self):
        g = load_dimacs(io.StringIO("p sp 2 1\na 1 2 7\n"))
        assert g.num_directed_edges == 2

    def test_missing_problem_line(self):
        with pytest.raises(ValueError, match="problem line"):
            load_dimacs(io.StringIO("a 1 2 3\n"))

    def test_unknown_line_type(self):
        with pytest.raises(ValueError, match="unknown"):
            load_dimacs(io.StringIO("p sp 2 1\nx 1 2\n"))

    def test_malformed_problem(self):
        with pytest.raises(ValueError, match="malformed"):
            load_dimacs(io.StringIO("p tw 2 1\n"))

    def test_roundtrip(self, tmp_path, medium_graph):
        path = tmp_path / "g.gr"
        save_dimacs(medium_graph, path)
        back = load_dimacs(path)
        assert back.num_vertices == medium_graph.num_vertices
        assert back.num_edges == medium_graph.num_edges
        assert np.array_equal(
            np.sort(back.weights), np.sort(medium_graph.weights)
        )

    def test_roundtrip_preserves_mst(self, tmp_path, medium_graph):
        from repro.core.verify import reference_mst_mask

        path = tmp_path / "g.gr"
        save_dimacs(medium_graph, path)
        back = load_dimacs(path)
        u1, v1, w1, _ = medium_graph.undirected_edges()
        u2, v2, w2, _ = back.undirected_edges()
        assert np.array_equal(u1, u2) and np.array_equal(w1, w2)


class TestMetis:
    def test_parse_weighted(self):
        text = io.StringIO(
            "% comment\n"
            "3 2 1\n"
            "2 5 3 7\n"  # vertex 1: edges to 2 (w 5) and 3 (w 7)
            "1 5\n"
            "1 7\n"
        )
        g = load_metis(text)
        assert g.num_vertices == 3
        assert g.num_edges == 2
        assert sorted(set(g.weights.tolist())) == [5, 7]

    def test_parse_unweighted(self):
        g = load_metis(io.StringIO("2 1\n2\n1\n"))
        assert g.num_edges == 1
        assert g.weights.tolist() == [1, 1]

    def test_too_many_adjacency_lines(self):
        with pytest.raises(ValueError, match="adjacency lines"):
            load_metis(io.StringIO("2 1\n2\n1\n1\n"))

    def test_short_file_pads_isolated_vertices(self):
        # Trailing blank adjacency lines (isolated vertices) may be
        # trimmed by editors; the loader pads them back.
        g = load_metis(io.StringIO("3 1\n2\n1\n"))
        assert g.num_vertices == 3
        assert g.num_edges == 1

    def test_unsupported_fmt(self):
        with pytest.raises(ValueError, match="fmt"):
            load_metis(io.StringIO("2 1 10\n2 1\n1 1\n"))

    def test_empty(self):
        with pytest.raises(ValueError, match="empty"):
            load_metis(io.StringIO(""))

    def test_roundtrip(self, tmp_path, medium_graph):
        path = tmp_path / "g.graph"
        save_metis(medium_graph, path)
        back = load_metis(path)
        assert back.num_vertices == medium_graph.num_vertices
        assert back.num_edges == medium_graph.num_edges
        assert np.array_equal(back.col_idx, medium_graph.col_idx)
        assert np.array_equal(back.weights, medium_graph.weights)

    def test_trailing_isolated_vertices(self, tmp_path):
        from helpers import make_graph

        g = make_graph(6, [(0, 1, 3)])  # vertices 2..5 isolated
        path = tmp_path / "iso.graph"
        save_metis(g, path)
        back = load_metis(path)
        assert back.num_vertices == 6
        assert back.num_edges == 1

    def test_wild_edge_count_mismatch(self):
        with pytest.raises(ValueError, match="mismatch"):
            load_metis(io.StringIO("2 40\n2\n1\n"))
