"""Sliding-window aggregation + lifetime-histogram quantile hardening."""

import math

import pytest

from repro.obs.metrics import Histogram
from repro.obs.window import SlidingCounter, SlidingHistogram


class FakeClock:
    def __init__(self, t: float = 0.0) -> None:
        self.t = t

    def __call__(self) -> float:
        return self.t


# ---------------------------------------------------------------------------
# SlidingCounter
# ---------------------------------------------------------------------------
class TestSlidingCounter:
    def test_counts_inside_window(self):
        clk = FakeClock(100.0)
        c = SlidingCounter(window_s=60, clock=clk)
        c.inc()
        c.inc(2.0)
        assert c.total() == 3.0
        assert c.rate() == pytest.approx(3.0 / 60.0)

    def test_rollover_forgets_old_traffic(self):
        clk = FakeClock(0.0)
        c = SlidingCounter(window_s=60, clock=clk)
        for _ in range(10):
            c.inc()
        clk.t = 59.0
        assert c.total() == 10.0
        clk.t = 61.5  # first slot now outside [1.5, 61.5]
        assert c.total() == 0.0

    def test_partial_rollover(self):
        clk = FakeClock(0.5)
        c = SlidingCounter(window_s=10, buckets=10, clock=clk)
        c.inc()  # slot 0
        clk.t = 5.5
        c.inc()  # slot 5
        clk.t = 10.5
        assert c.total() == 1.0  # slot 0 expired, slot 5 lives

    def test_out_of_order_within_window_lands(self):
        clk = FakeClock(30.0)
        c = SlidingCounter(window_s=60, clock=clk)
        c.inc(ts=5.0)  # late but inside the window
        assert c.total() == 1.0
        assert c.dropped == 0

    def test_older_than_window_dropped_not_misbinned(self):
        clk = FakeClock(100.0)
        c = SlidingCounter(window_s=60, clock=clk)
        c.inc(ts=10.0)  # 90s late
        assert c.total() == 0.0
        assert c.dropped == 1

    def test_empty_window_is_zero(self):
        c = SlidingCounter(window_s=60, clock=FakeClock(7.0))
        assert c.total() == 0.0
        assert c.rate() == 0.0

    def test_prune_bounds_memory(self):
        clk = FakeClock(0.0)
        c = SlidingCounter(window_s=10, buckets=10, clock=clk)
        for i in range(500):
            clk.t = float(i)
            c.inc()
        assert len(c._slots) <= 2 * c.buckets

    def test_validation(self):
        with pytest.raises(ValueError):
            SlidingCounter(window_s=0)
        with pytest.raises(ValueError):
            SlidingCounter(window_s=10, buckets=0)


# ---------------------------------------------------------------------------
# SlidingHistogram
# ---------------------------------------------------------------------------
class TestSlidingHistogram:
    def test_quantiles_over_live_window_only(self):
        clk = FakeClock(0.0)
        h = SlidingHistogram(window_s=60, clock=clk)
        h.observe(100.0)  # will expire
        clk.t = 70.0
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        assert h.count() == 4
        assert h.quantile(0.5) == 2.0
        assert h.quantile(1.0) == 4.0
        assert h.mean() == pytest.approx(2.5)

    def test_empty_window_sentinel(self):
        h = SlidingHistogram(window_s=60, clock=FakeClock(0.0))
        assert h.quantile(0.5) == 0.0
        assert h.mean() == 0.0
        assert h.summary() == {
            "count": 0,
            "mean": 0.0,
            "p50": 0.0,
            "p95": 0.0,
            "max": 0.0,
        }

    def test_single_observation_answers_every_quantile(self):
        clk = FakeClock(5.0)
        h = SlidingHistogram(window_s=60, clock=clk)
        h.observe(7.0)
        for q in (0.0, 0.5, 0.95, 1.0):
            assert h.quantile(q) == 7.0

    def test_out_of_range_quantile_raises(self):
        h = SlidingHistogram(window_s=60, clock=FakeClock(0.0))
        for bad in (-0.1, 1.1, float("nan")):
            with pytest.raises(ValueError):
                h.quantile(bad)

    def test_late_observation_dropped(self):
        clk = FakeClock(100.0)
        h = SlidingHistogram(window_s=60, clock=clk)
        h.observe(9.0, ts=1.0)
        assert h.count() == 0
        assert h.dropped == 1

    def test_out_of_order_within_window_counts(self):
        clk = FakeClock(30.0)
        h = SlidingHistogram(window_s=60, clock=clk)
        h.observe(9.0, ts=2.0)
        assert h.count() == 1

    def test_max_samples_sheds_oldest(self):
        clk = FakeClock(0.0)
        h = SlidingHistogram(window_s=1000.0, max_samples=10, clock=clk)
        for i in range(25):
            clk.t = float(i)
            h.observe(float(i))
        assert h.count() <= 10
        # The newest observations survive the shed.
        assert h.quantile(1.0) == 24.0


# ---------------------------------------------------------------------------
# Lifetime Histogram.quantile hardening (the satellite fix)
# ---------------------------------------------------------------------------
class TestLifetimeHistogramQuantile:
    def test_empty_returns_sentinel_not_nan(self):
        h = Histogram("lat")
        v = h.quantile(0.5)
        assert v == 0.0 and not math.isnan(v)

    def test_single_sample(self):
        h = Histogram("lat")
        h.observe(3.25)
        assert h.quantile(0.0) == 3.25
        assert h.quantile(0.5) == 3.25
        assert h.quantile(1.0) == 3.25

    def test_out_of_range_raises(self):
        h = Histogram("lat")
        h.observe(1.0)
        for bad in (-0.01, 1.01, float("nan")):
            with pytest.raises(ValueError):
                h.quantile(bad)

    def test_nearest_rank(self):
        h = Histogram("lat")
        for v in (1.0, 2.0, 3.0, 4.0, 5.0):
            h.observe(v)
        assert h.quantile(0.5) == 3.0
        assert h.quantile(0.95) == 5.0
